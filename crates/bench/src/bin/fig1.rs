//! Fig. 1 — L2 miss decomposition: Xen / dom0 / guest VMs.

use vsnoop::experiments::fig1;
use vsnoop_bench::{f1, heading, opt, scale_from_env, TextTable};

fn main() {
    heading(
        "Figure 1: L2 miss decomposition (hypervisor / dom0 / guest)",
        "Two VMs (4 vCPUs each) per application, host activity enabled.\n\
         Paper: <5% host share for most PARSEC apps (dedup 11%, freqmine 8%,\n\
         raytrace 7%), OLTP 15%, SPECweb 19%.",
    );
    let mut t = TextTable::new([
        "workload",
        "guest %",
        "dom0 %",
        "xen %",
        "host total %",
        "paper host %",
    ]);
    for r in fig1(scale_from_env()) {
        t.row([
            r.name.to_string(),
            f1(r.guest_pct),
            f1(r.dom0_pct),
            f1(r.hyp_pct),
            f1(r.host_pct()),
            opt(r.paper_host_pct),
        ]);
    }
    t.maybe_dump_csv("fig1").expect("csv dump");
    println!("{t}");
}

//! Fig. 6 — execution times of virtual snooping with ideally pinned VMs.

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::fig6(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("fig6: {e}");
            std::process::exit(1);
        }
    }
}

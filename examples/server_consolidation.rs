//! Server consolidation: heterogeneous VMs (a Java server, an OLTP
//! database, and two compute jobs) share one 16-core processor.
//!
//! Demonstrates the paper's core claim in the scenario its introduction
//! motivates: consolidated-but-isolated VMs rarely need cross-VM snoops,
//! so per-VM snoop domains remove most of the coherence broadcast cost —
//! while hypervisor/dom0 activity (which must be broadcast) only dents the
//! saving slightly.
//!
//! ```text
//! cargo run --release --example server_consolidation
//! ```

use virtual_snooping::prelude::*;
use workloads::Workload as Wl;

fn main() {
    let cfg = SystemConfig::paper_default();
    let apps = ["specjbb", "OLTP", "swaptions", "canneal"];
    println!("Consolidating four different VMs on 16 cores:");
    for (i, a) in apps.iter().enumerate() {
        println!("  VM{i}: {a}");
    }
    println!();

    let profiles: Vec<_> = apps
        .iter()
        .map(|n| profile(n).expect("registered workload"))
        .collect();

    let mk_wl = || {
        Wl::new(
            profiles.clone(),
            WorkloadConfig {
                vcpus_per_vm: cfg.vcpus_per_vm,
                host_activity: true, // I/O-heavy guests invoke dom0/Xen
                ..Default::default()
            },
        )
    };

    let mut base = Simulator::new(cfg, FilterPolicy::TokenBroadcast, ContentPolicy::Broadcast);
    let mut wl = mk_wl();
    base.run(&mut wl, 20_000);
    base.reset_measurement();
    base.run(&mut wl, 40_000);

    let mut filt = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
    let mut wl = mk_wl();
    filt.run(&mut wl, 20_000);
    filt.reset_measurement();
    filt.run(&mut wl, 40_000);

    let s = filt.stats();
    println!(
        "guest / dom0 / hypervisor miss shares: {:.1}% / {:.1}% / {:.1}%",
        100.0 * s.misses_guest as f64 / s.l2_misses as f64,
        100.0 * s.misses_dom0 as f64 / s.l2_misses as f64,
        100.0 * s.misses_hyp as f64 / s.l2_misses as f64,
    );
    println!(
        "host-caused broadcasts cannot be filtered; everything else is\n\
         multicast within each VM's 4-core snoop domain.\n"
    );
    println!(
        "snoops:  {} -> {}  ({:.1}% filtered; 75% is the no-host ideal)",
        base.stats().snoops,
        s.snoops,
        100.0 * (1.0 - s.snoops as f64 / base.stats().snoops as f64)
    );
    println!(
        "traffic: {} -> {} byte-links ({:.1}% reduction)",
        base.traffic().byte_links(),
        filt.traffic().byte_links(),
        100.0 * filt.traffic().reduction_vs(base.traffic())
    );
}

//! Physical address arithmetic.
//!
//! The simulated machine uses 64-byte cache blocks and 4 KB pages
//! (Table II), so a page holds 64 blocks. Coherence operates on
//! [`BlockAddr`]s; sharing types are per *page*, so the conversion between
//! the two is on the critical path of every filter decision.

/// Cache block size in bytes (Table II).
pub const BLOCK_BYTES: u64 = 64;
/// Page size in bytes.
pub const PAGE_BYTES: u64 = 4096;
/// Cache blocks per page.
pub const BLOCKS_PER_PAGE: u64 = PAGE_BYTES / BLOCK_BYTES;

/// A byte-granularity host-physical address.
///
/// # Examples
///
/// ```
/// use sim_mem::{Addr, BLOCK_BYTES};
///
/// let a = Addr::new(4096 + 65);
/// assert_eq!(a.block().index(), 4096 / BLOCK_BYTES + 1);
/// assert_eq!(a.page(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache block containing this address.
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 / BLOCK_BYTES)
    }

    /// Returns the host page number containing this address.
    pub const fn page(self) -> u64 {
        self.0 / PAGE_BYTES
    }
}

/// A cache-block-granularity address (byte address divided by
/// [`BLOCK_BYTES`]).
///
/// # Examples
///
/// ```
/// use sim_mem::{BlockAddr, BLOCKS_PER_PAGE};
///
/// let b = BlockAddr::in_page(3, 5);
/// assert_eq!(b.page(), 3);
/// assert_eq!(b.index(), 3 * BLOCKS_PER_PAGE + 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block number.
    pub const fn new(raw: u64) -> Self {
        BlockAddr(raw)
    }

    /// Returns the `i`-th block of host page `page`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not smaller than [`BLOCKS_PER_PAGE`].
    pub const fn in_page(page: u64, i: u64) -> Self {
        assert!(i < BLOCKS_PER_PAGE, "block index exceeds page");
        BlockAddr(page * BLOCKS_PER_PAGE + i)
    }

    /// Returns the raw block number.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the host page number containing this block.
    pub const fn page(self) -> u64 {
        self.0 / BLOCKS_PER_PAGE
    }

    /// Returns the block offset within its page.
    pub const fn page_offset(self) -> u64 {
        self.0 % BLOCKS_PER_PAGE
    }

    /// Returns the first byte address of this block.
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 * BLOCK_BYTES)
    }
}

impl From<Addr> for BlockAddr {
    fn from(a: Addr) -> Self {
        a.block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_page_relations() {
        let a = Addr::new(2 * PAGE_BYTES + 3 * BLOCK_BYTES + 7);
        assert_eq!(a.page(), 2);
        let b = a.block();
        assert_eq!(b.page(), 2);
        assert_eq!(b.page_offset(), 3);
        assert_eq!(b.base_addr().raw(), 2 * PAGE_BYTES + 3 * BLOCK_BYTES);
    }

    #[test]
    fn in_page_construction() {
        for i in 0..BLOCKS_PER_PAGE {
            let b = BlockAddr::in_page(9, i);
            assert_eq!(b.page(), 9);
            assert_eq!(b.page_offset(), i);
        }
    }

    #[test]
    fn from_addr_conversion() {
        let a = Addr::new(1000);
        assert_eq!(BlockAddr::from(a), a.block());
    }

    #[test]
    fn constants_consistent() {
        assert_eq!(BLOCKS_PER_PAGE, 64);
        assert_eq!(BLOCK_BYTES * BLOCKS_PER_PAGE, PAGE_BYTES);
    }
}

//! # Virtual snooping: filtering snoops in virtualized multi-cores
//!
//! A from-scratch reproduction of Kim, Kim & Huh, *"Virtual Snooping:
//! Filtering Snoops in Virtualized Multi-cores"* (MICRO-43, 2010).
//!
//! Virtual snooping exploits the memory isolation between virtual machines
//! to filter snoop-based cache-coherence traffic: each VM forms a *virtual
//! snoop domain* and coherence requests for VM-private pages are multicast
//! only to the cores in the VM's **vCPU map** instead of broadcast to the
//! whole machine. Three effects break the isolation — hypervisor data
//! sharing, VM relocation, and content-based page sharing — and this crate
//! implements the paper's answers to each: always-broadcast host requests,
//! per-VM cache-residence counters that shrink stale vCPU maps
//! ([`FilterPolicy::Counter`] / counter-threshold), and read-only-aware
//! routing for content-shared pages ([`ContentPolicy`]).
//!
//! The crate bundles:
//!
//! * [`Simulator`] — a trace-driven 16-core full-system model (private
//!   L1/L2, TokenB coherence, 4x4 mesh) with pluggable filter policies;
//! * [`VcpuMap`] / [`VcpuMapFile`] — the n-bit snoop-domain registers;
//! * [`snoop_reduction`] — the closed-form potential-reduction model
//!   (Fig. 2);
//! * [`experiments`] — one driver per paper table/figure.
//!
//! # Examples
//!
//! ```
//! use vsnoop::{Simulator, SystemConfig, FilterPolicy, ContentPolicy};
//! use workloads::{Workload, WorkloadConfig, profile};
//!
//! let cfg = SystemConfig::small_test();
//! let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
//! let mut wl = Workload::homogeneous(
//!     profile("fft").unwrap(),
//!     cfg.n_vms,
//!     WorkloadConfig { vcpus_per_vm: cfg.vcpus_per_vm, ..Default::default() },
//! );
//! sim.run(&mut wl, 200);
//! assert!(sim.stats().l2_misses > 0);
//! ```

#![warn(missing_docs)]

mod analytic;
pub mod checker;
mod config;
mod energy;
mod error;
pub mod experiments;
pub mod fault;
pub mod knob;
pub mod obs;
mod policy;
mod region_filter;
pub mod runner;
pub mod service;
mod simulator;
mod stats;
pub mod testing;
mod vcpu_map;

pub use analytic::{fig2_sweep, snoop_reduction, try_snoop_reduction, Fig2Point};
pub use checker::{CheckerConfig, CheckerCtx, InvariantChecker, InvariantKind, Violation};
pub use config::{ConfigError, SystemConfig};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use error::SimError;
pub use experiments::{
    clear_warm_pool, set_warm_reuse, warm_counters, warm_reuse_enabled, warm_tenant_counters,
};
pub use fault::{FaultInjectionStats, FaultPlan, MapCorruption};
pub use policy::{ContentPolicy, FilterPolicy};
pub use region_filter::RegionFilter;
pub use simulator::{ReplayWorkload, SimSnapshot, Simulator, SystemWorkload};
pub use stats::{RemovalEvent, SimStats};
pub use vcpu_map::{VcpuMap, VcpuMapFile};

//! Minimal async-signal-safe shutdown flag for SIGTERM/SIGINT.
//!
//! The workspace builds offline with no signal-handling crate, so this
//! installs a raw `signal(2)` handler via the libc that `std` already
//! links. The handler does only things that are async-signal-safe: it
//! stores into a process-global `AtomicBool`, and — when a reactor has
//! registered its wake fd via [`set_wake_fd`] — writes one byte to it
//! (`write(2)` is on the async-signal-safe list), so a reactor blocked
//! in `poll`/`epoll_wait` notices the drain immediately instead of on
//! its next timeout tick. The reactor polls [`requested`] on every
//! pass either way, so the wake fd is a latency optimization, not a
//! correctness requirement.

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

/// Set by the handler; polled by the reactor loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// The reactor's waker fd (−1 when none is registered). Written by the
/// signal handler to turn a signal into an immediate poll wakeup.
static WAKE_FD: AtomicI32 = AtomicI32::new(-1);

/// Signal numbers per POSIX (stable on every platform we build for).
#[cfg(unix)]
const SIGINT: i32 = 2;
#[cfg(unix)]
const SIGTERM: i32 = 15;

#[cfg(unix)]
extern "C" {
    /// `signal(2)` from the platform libc (linked by `std`).
    fn signal(signum: i32, handler: usize) -> usize;
    /// `write(2)` — async-signal-safe, used to poke the reactor.
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

/// The installed handler: flag store + best-effort reactor wakeup
/// (both async-signal-safe).
#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
    let fd = WAKE_FD.load(Ordering::SeqCst);
    if fd >= 0 {
        let byte = 1u8;
        unsafe {
            let _ = write(fd, &byte, 1);
        }
    }
}

/// Registers the reactor's waker write-fd so a signal wakes a blocked
/// poll immediately. Last registration wins (one serving reactor per
/// process in practice; extra reactors still notice via polling).
pub fn set_wake_fd(fd: i32) {
    WAKE_FD.store(fd, Ordering::SeqCst);
}

/// Deregisters `fd` if it is still the registered waker (compare-and-
/// swap, so a newer reactor's registration is never clobbered). Called
/// when a reactor exits — its fd is about to close, and a reused fd
/// number must not receive stray signal bytes.
pub fn clear_wake_fd(fd: i32) {
    let _ = WAKE_FD.compare_exchange(fd, -1, Ordering::SeqCst, Ordering::SeqCst);
}

/// Installs the SIGTERM/SIGINT handlers. Idempotent; call once from
/// the `serve` binary before entering the accept loop.
///
/// Only compiled in on Unix — elsewhere this is a no-op and shutdown
/// is driven by the `shutdown` protocol op alone.
pub fn install() {
    #[cfg(unix)]
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// Whether a shutdown signal has been received (or injected).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Injects a shutdown request from normal code — the `shutdown`
/// protocol op and tests use this to share the signal path.
pub fn request() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests only; the serve binary exits after a drain).
#[cfg(test)]
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_and_reset_clears() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }

    #[test]
    fn clear_wake_fd_only_clears_its_own_registration() {
        set_wake_fd(1000);
        clear_wake_fd(999); // stale reactor: not the registered fd
        assert_eq!(WAKE_FD.load(Ordering::SeqCst), 1000);
        clear_wake_fd(1000);
        assert_eq!(WAKE_FD.load(Ordering::SeqCst), -1);
    }
}

//! Fine-grained sharding *inside* one supervised job.
//!
//! The campaign supervisor parallelizes across jobs, but the heavy
//! reports (the migration sweeps, the pinned and content tables) are
//! each one job built from many independent per-application cells.
//! [`scatter`] fans those cells out over a bounded pool of scoped
//! worker threads and returns the results **in item order**, so a
//! sweep's output is byte-identical to the serial loop it replaces.
//!
//! Supervision composes with sharding:
//!
//! - the caller's [`CancelToken`](super::CancelToken) (if the calling
//!   thread is a supervised job) is re-installed on every worker, so
//!   the watchdog's deadline cuts through the whole fan-out at the
//!   simulators' usual round-boundary polls;
//! - a panicking shard is caught, remaining unstarted shards are
//!   abandoned, and — after every in-flight shard has finished — the
//!   panic of the **lowest item index** is resumed on the caller. That
//!   is the same panic a serial loop would have surfaced, so panic
//!   isolation and crash reproducers behave identically at any worker
//!   count.
//!
//! The worker count is process-global: explicit
//! [`set_shard_workers`] (the `all` binary's `--workers` flag), else
//! the `VSNOOP_SHARD_WORKERS` environment variable, else the host's
//! available parallelism. A count of 1 — or a single-item input — runs
//! inline on the caller thread, which is exactly the legacy serial
//! path.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use super::cancel;
use super::json::Value;

/// Explicit worker-count override; 0 means "not set" (fall through to
/// the environment, then to the host parallelism).
static SHARD_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-global shard worker count (0 clears the override).
pub fn set_shard_workers(n: usize) {
    SHARD_WORKERS.store(n, Ordering::Relaxed);
}

/// The effective shard worker count: [`set_shard_workers`] if set, else
/// `VSNOOP_SHARD_WORKERS`, else the host's available parallelism.
pub fn shard_workers() -> usize {
    let n = SHARD_WORKERS.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    if let Some(n) = crate::knob::env_positive_usize("VSNOOP_SHARD_WORKERS") {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every item on the shard worker pool and returns the
/// results in item order.
///
/// See the module docs for the ordering, cancellation and panic
/// contract. With one worker (or fewer than two items) this is exactly
/// `items.into_iter().map(f).collect()` on the caller thread.
pub fn scatter<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let workers = shard_workers().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let token = cancel::current();
    let scope = crate::obs::scope_label();
    let tenant = crate::obs::tenant_label();
    let n = items.len();
    let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let done: Vec<Mutex<Option<std::thread::Result<T>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);

    std::thread::scope(|s| {
        for _ in 0..workers {
            let (work, done, next, abort, token, f, scope, tenant) =
                (&work, &done, &next, &abort, &token, &f, &scope, &tenant);
            s.spawn(move || {
                let drain = || loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("shard queue poisoned")
                        .take()
                        .expect("shard item dispatched twice");
                    let result = catch_unwind(AssertUnwindSafe(|| f(item)));
                    if result.is_err() {
                        abort.store(true, Ordering::Relaxed);
                        // The failing shard's flight ring lives on this
                        // worker thread; dump it before the panic
                        // travels back to the caller.
                        if crate::obs::enabled() {
                            crate::obs::dump_flight("shard-panic");
                        }
                    }
                    *done[i].lock().expect("shard results poisoned") = Some(result);
                };
                // Re-install the supervising job's token (and the
                // panic-hook quieting that goes with it) on this worker,
                // and inherit its observability scope — so shard dumps
                // land next to the job's other artifacts — and tenant
                // label, so per-tenant accounting (warm-pool hit/miss)
                // follows the work onto helper threads.
                let scoped = || crate::obs::with_scope(scope, drain);
                let labelled = || match tenant {
                    Some(t) => crate::obs::with_tenant(t, scoped),
                    None => scoped(),
                };
                match token {
                    Some(t) => cancel::with_current(t.clone(), labelled),
                    None => labelled(),
                }
            });
        }
    });

    let mut results: Vec<Option<std::thread::Result<T>>> = done
        .into_iter()
        .map(|slot| slot.into_inner().expect("shard results poisoned"))
        .collect();

    // Lowest-index panic wins: identical to the serial loop, where
    // later items would never have run. Shards that *did* complete
    // after the failing index are discarded with it — record what that
    // partial progress was instead of dropping it silently.
    if let Some(i) = results.iter().position(|r| matches!(r, Some(Err(_)))) {
        if crate::obs::telemetry_active() {
            let completed_after = results[i + 1..]
                .iter()
                .filter(|r| matches!(r, Some(Ok(_))))
                .count();
            let unstarted = results.iter().filter(|r| r.is_none()).count();
            let message = match &results[i] {
                Some(Err(p)) => super::supervisor::panic_message(p.as_ref()),
                _ => unreachable!(),
            };
            crate::obs::telemetry::emit(
                "shard_panic",
                vec![
                    ("index", Value::UInt(i as u64)),
                    ("shards", Value::UInt(n as u64)),
                    ("completed_after", Value::UInt(completed_after as u64)),
                    ("dropped_unstarted", Value::UInt(unstarted as u64)),
                    ("message", Value::Str(message)),
                ],
            );
        }
        let Some(Err(payload)) = results.swap_remove(i) else {
            unreachable!()
        };
        resume_unwind(payload);
    }

    results
        .into_iter()
        .map(|r| match r {
            Some(Ok(v)) => v,
            // Unstarted shard past an aborted one; unreachable unless
            // an earlier slot holds the panic that caused the abort.
            _ => unreachable!("shard skipped without a preceding panic"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{CancelToken, Cancelled};

    /// Serializes tests that flip the process-global worker count.
    static WORKERS_LOCK: Mutex<()> = Mutex::new(());

    fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _g = WORKERS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = SHARD_WORKERS.load(Ordering::Relaxed);
        set_shard_workers(n);
        struct Reset(usize);
        impl Drop for Reset {
            fn drop(&mut self) {
                set_shard_workers(self.0);
            }
        }
        let _r = Reset(before);
        f()
    }

    #[test]
    fn preserves_item_order_at_any_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = with_workers(workers, || scatter(items.clone(), |i| i * i));
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn single_worker_runs_inline() {
        let caller = std::thread::current().id();
        let ids = with_workers(1, || {
            scatter(vec![(), ()], |()| std::thread::current().id())
        });
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = with_workers(4, || scatter(Vec::<u32>::new(), |x| x));
        assert!(out.is_empty());
    }

    #[test]
    fn lowest_index_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            with_workers(4, || {
                scatter((0..16).collect::<Vec<u32>>(), |i| {
                    if i % 5 == 1 {
                        panic!("shard {i} failed");
                    }
                    i
                })
            })
        });
        let payload = r.expect_err("a shard panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "shard 1 failed", "serial order decides the panic");
    }

    #[test]
    fn cancelled_caller_token_reaches_workers() {
        let token = CancelToken::new();
        token.cancel();
        let r = std::panic::catch_unwind(|| {
            cancel::with_current(token, || {
                with_workers(4, || {
                    scatter((0..8).collect::<Vec<u32>>(), |i| {
                        crate::runner::poll_current();
                        i
                    })
                })
            })
        });
        let payload = r.expect_err("cancellation must unwind through scatter");
        assert!(
            payload.downcast_ref::<Cancelled>().is_some(),
            "the Cancelled sentinel must survive shard propagation"
        );
    }

    #[test]
    fn worker_count_resolution_prefers_override() {
        with_workers(3, || assert_eq!(shard_workers(), 3));
    }
}

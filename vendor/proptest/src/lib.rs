//! Vendored, offline stand-in for the subset of `proptest` 1.x this
//! workspace uses. The workspace maps the `proptest` dependency name onto
//! this package, so the property-test files compile unchanged with **no
//! network or registry access**.
//!
//! Scope (deliberate simplifications versus upstream):
//!
//! * **Generation only, no shrinking.** A failing case panics with the case
//!   index and the generated inputs are reproducible from the (deterministic)
//!   per-test seed, which is derived from the test name — there is no
//!   persistence file and `*.proptest-regressions` files are ignored.
//! * Strategies implemented: integer/float [`core::ops::Range`]s, [`Just`],
//!   tuples up to arity 8, [`Strategy::prop_map`], [`prop_oneof!`] unions,
//!   [`collection::vec`], and [`arbitrary::any`] for the primitive types.
//! * [`prop_assert!`] / [`prop_assert_eq!`] short-circuit the current case
//!   with a formatted failure, like upstream.

#![warn(missing_docs)]

/// The generator handed to strategies: the workspace's vendored xoshiro
/// generator.
pub type TestRng = rand::rngs::SmallRng;

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use super::TestRng;
    use rand::Rng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u16, u32, u64, usize, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace samples.

    use super::strategy::Strategy;
    use super::TestRng;
    use core::marker::PhantomData;
    use rand::{Rng, Sample};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sample {}
    impl Arbitrary for bool {}
    impl Arbitrary for u8 {}
    impl Arbitrary for u16 {}
    impl Arbitrary for u32 {}
    impl Arbitrary for u64 {}
    impl Arbitrary for usize {}
    impl Arbitrary for f64 {}

    /// Strategy producing uniformly random values of `T`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen()
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy for vectors with length drawn from a half-open range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates `Vec`s of `element` values with `len` in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "empty size range for collection::vec"
        );
        VecStrategy { element, len: size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case iteration, deterministic seeding, and failure plumbing.

    use super::TestRng;
    use rand::SeedableRng;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// A failed property case (produced by `prop_assert!`).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        pub fn fail(message: String) -> TestCaseError {
            TestCaseError { message }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drives the cases of one property test deterministically.
    pub struct TestRunner {
        config: Config,
        base_seed: u64,
    }

    impl TestRunner {
        /// Builds a runner whose case seeds derive from the test `name`,
        /// so every run of the same test replays identical inputs.
        pub fn new(config: Config, name: &str) -> TestRunner {
            // FNV-1a over the test name.
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01B3);
            }
            TestRunner {
                config,
                base_seed: h,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The generator for case `case`.
        pub fn case_rng(&self, case: u32) -> TestRng {
            TestRng::seed_from_u64(
                self.base_seed
                    .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*` for the APIs the
    //! workspace uses.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current case (early-returning `Err`) if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case if the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?} == {:?}` ({} == {})",
            __l,
            __r,
            stringify!($a),
            stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(__l != __r, "assertion failed: `{:?} != {:?}`", __l, __r);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Declares property tests: each `fn` runs `cases` times over freshly
/// generated inputs. Mirrors the upstream macro's surface syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __strategies = ($($s,)+);
            let __runner = $crate::test_runner::TestRunner::new(__config, stringify!($name));
            for __case in 0..__runner.cases() {
                let mut __rng = __runner.case_rng(__case);
                let ($($p,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    ::std::panic!(
                        "proptest '{}' case {}/{} failed: {}",
                        stringify!($name),
                        __case + 1,
                        __runner.cases(),
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.75).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            Just(0u64),
            (10u64..20).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 0 || (20..40).contains(&v));
        }

        #[test]
        fn vec_respects_size(items in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let runner = crate::test_runner::TestRunner::new(
            crate::test_runner::Config::with_cases(8),
            "determinism",
        );
        let strat = 0u64..1_000_000;
        let first: Vec<u64> = (0..8)
            .map(|c| strat.generate(&mut runner.case_rng(c)))
            .collect();
        let second: Vec<u64> = (0..8)
            .map(|c| strat.generate(&mut runner.case_rng(c)))
            .collect();
        assert_eq!(first, second);
    }
}

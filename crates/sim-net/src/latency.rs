//! Network latency model.
//!
//! Table II of the paper: a 4-cycle router pipeline and 16-byte links. A
//! message crossing `h` hops with `f` flits takes
//! `h * (router + link) + (f - 1)` cycles (cut-through: the tail flits
//! stream behind the head). On top of that base latency we expose a simple
//! contention factor used by the end-to-end runtime estimate (Fig. 6):
//! queueing delay grows with link utilization roughly like an M/D/1 queue.

/// Pipeline and link timing parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LatencyModel {
    /// Router pipeline depth in cycles (paper: 4).
    pub router_cycles: u32,
    /// Link traversal in cycles (1 for a mesh hop).
    pub link_cycles: u32,
    /// Link width in bytes per flit (paper: 16).
    pub link_bytes: u32,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            router_cycles: 4,
            link_cycles: 1,
            link_bytes: 16,
        }
    }
}

impl LatencyModel {
    /// Base (uncontended) latency in cycles for a message of `bytes`
    /// payload crossing `hops` links.
    ///
    /// A zero-hop message (local delivery) still pays one router traversal.
    pub fn base_latency(&self, hops: u32, bytes: u32) -> u64 {
        let flits = bytes.div_ceil(self.link_bytes).max(1);
        let hops = hops.max(1);
        u64::from(hops) * u64::from(self.router_cycles + self.link_cycles) + u64::from(flits - 1)
    }

    /// Scales a base latency by a contention factor derived from average
    /// link `utilization` in `[0, 1)`.
    ///
    /// Uses the M/D/1-style factor `1 + rho / (2 * (1 - rho))`, with the
    /// utilization clamped to 0.95 so pathological inputs stay finite.
    pub fn contended_latency(&self, base: u64, utilization: f64) -> u64 {
        let rho = utilization.clamp(0.0, 0.95);
        let factor = 1.0 + rho / (2.0 * (1.0 - rho));
        (base as f64 * factor).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hop_control_message() {
        let m = LatencyModel::default();
        // 1 hop * (4 + 1) + (1 - 1) = 5 cycles.
        assert_eq!(m.base_latency(1, 8), 5);
    }

    #[test]
    fn multi_hop_data_message() {
        let m = LatencyModel::default();
        // 72 bytes = 5 flits; 3 hops * 5 + 4 = 19.
        assert_eq!(m.base_latency(3, 72), 19);
    }

    #[test]
    fn zero_hop_pays_one_router() {
        let m = LatencyModel::default();
        assert_eq!(m.base_latency(0, 8), 5);
    }

    #[test]
    fn contention_monotonic() {
        let m = LatencyModel::default();
        let base = 20;
        let l0 = m.contended_latency(base, 0.0);
        let l5 = m.contended_latency(base, 0.5);
        let l9 = m.contended_latency(base, 0.9);
        assert_eq!(l0, base);
        assert!(l5 > l0);
        assert!(l9 > l5);
        // Clamped: stays finite even for nonsense utilization.
        let l_max = m.contended_latency(base, 2.0);
        assert!(l_max >= l9 && l_max < base * 20);
    }

    #[test]
    fn custom_link_width() {
        let m = LatencyModel {
            link_bytes: 8,
            ..Default::default()
        };
        // 72 bytes on 8-byte links = 9 flits; 2 hops * 5 + 8 = 18.
        assert_eq!(m.base_latency(2, 72), 18);
    }
}

//! Fig. 1 — L2 miss decomposition: hypervisor (Xen), dom0, guest VMs.
//!
//! The paper measures a real dual-socket Xeon under Xen 4.0 with two VMs
//! (4 vCPUs each) running the same application, using hardware performance
//! counters. Here the same decomposition comes from the trace simulator
//! with host activity enabled: hypervisor/dom0 slots stream through large
//! RW-shared pools, so nearly every host access is an L2 miss that must be
//! broadcast.

use workloads::fig1_apps;

use crate::config::SystemConfig;
use crate::experiments::common::{run_pinned, RunScale};
use crate::policy::{ContentPolicy, FilterPolicy};

/// One bar of Fig. 1.
#[derive(Clone, Debug)]
pub struct Fig1Row {
    /// Application name.
    pub name: &'static str,
    /// Guest share of L2 misses, percent.
    pub guest_pct: f64,
    /// Dom0 share, percent.
    pub dom0_pct: f64,
    /// Hypervisor share, percent.
    pub hyp_pct: f64,
    /// Paper's reported hypervisor + dom0 share, percent (approximate,
    /// read off Fig. 1).
    pub paper_host_pct: Option<f64>,
}

impl Fig1Row {
    /// Measured hypervisor + dom0 share, percent.
    pub fn host_pct(&self) -> f64 {
        self.dom0_pct + self.hyp_pct
    }
}

/// Runs the Fig. 1 experiment: two VMs per application, host activity on.
pub fn fig1(scale: RunScale) -> Vec<Fig1Row> {
    let cfg = SystemConfig {
        n_vms: 2,
        ..SystemConfig::paper_default()
    };
    fig1_apps()
        .into_iter()
        .map(|app| {
            let sim = run_pinned(
                app,
                FilterPolicy::TokenBroadcast,
                ContentPolicy::Broadcast,
                false,
                true,
                cfg,
                scale,
            );
            let s = sim.stats();
            let total = s.l2_misses.max(1) as f64;
            Fig1Row {
                name: app.name,
                guest_pct: 100.0 * s.misses_guest as f64 / total,
                dom0_pct: 100.0 * s.misses_dom0 as f64 / total,
                hyp_pct: 100.0 * s.misses_hyp as f64 / total,
                paper_host_pct: app.targets.fig1_host_miss_pct,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one_hundred() {
        let rows = fig1(RunScale::quick());
        assert_eq!(rows.len(), 15);
        for r in &rows {
            let sum = r.guest_pct + r.dom0_pct + r.hyp_pct;
            assert!((sum - 100.0).abs() < 1e-6, "{}: {sum}", r.name);
            assert!(r.guest_pct > 50.0, "{}: guests must dominate", r.name);
        }
    }

    #[test]
    fn io_workloads_have_more_host_misses_than_compute() {
        let rows = fig1(RunScale::quick());
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().host_pct();
        assert!(get("SPECweb") > get("blackscholes"));
        assert!(get("OLTP") > get("swaptions"));
        // The paper's ceiling: even I/O-heavy workloads stay under ~25%.
        assert!(rows.iter().all(|r| r.host_pct() < 30.0));
    }
}

//! A minimal, dependency-free JSON codec for the runner's journal and
//! crash-reproducer files.
//!
//! The build has no network access and no serde; the runner only needs a
//! small, deterministic subset of JSON: objects keep insertion order (so
//! serialization is byte-stable), integers round-trip exactly (seeds are
//! `u64`), and parsing is strict enough to reject truncated journal
//! lines after a crash.

use std::fmt::Write as _;

/// A JSON value.
///
/// Objects are ordered vectors rather than maps: serialization order is
/// exactly insertion order, which is what makes journal lines and merged
/// journals byte-identical across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers seeds and counters exactly).
    UInt(u64),
    /// A signed integer (only produced for negative inputs).
    Int(i64),
    /// A float (anything with a fraction or exponent).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

/// A parse failure, with a byte offset for context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Builds an object from key/value pairs (insertion order preserved).
    pub fn obj<I: IntoIterator<Item = (&'static str, Value)>>(pairs: I) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Float(x) => Some(x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a compact, deterministic JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(x) => {
                // `{:?}` always keeps a fraction or exponent, so floats
                // parse back as floats; non-finite values have no JSON
                // representation and become null.
                if x.is_finite() {
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed or truncated input.
    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the runner's
                            // own output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::UInt(u64::MAX),
            Value::Int(-42),
            Value::Float(1.5),
            Value::Str("hi \"there\"\nline".into()),
        ] {
            let text = v.to_json();
            assert_eq!(Value::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn round_trips_nested() {
        let v = Value::obj([
            ("job", Value::Str("fig1".into())),
            ("seed", Value::UInt(0xC0FFEE)),
            (
                "scale",
                Value::obj([
                    ("warmup", Value::UInt(60_000)),
                    ("measure", Value::UInt(120_000)),
                ]),
            ),
            (
                "tags",
                Value::Arr(vec![Value::Str("a".into()), Value::Str("b".into())]),
            ),
        ]);
        let text = v.to_json();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("seed").and_then(Value::as_u64), Some(0xC0FFEE));
        assert_eq!(
            back.get("scale")
                .and_then(|s| s.get("measure"))
                .and_then(Value::as_u64),
            Some(120_000)
        );
    }

    #[test]
    fn serialization_is_deterministic() {
        let v = Value::obj([("b", Value::UInt(1)), ("a", Value::UInt(2))]);
        // Insertion order, not alphabetical — byte-stable across runs.
        assert_eq!(v.to_json(), "{\"b\":1,\"a\":2}");
    }

    #[test]
    fn rejects_truncation_and_garbage() {
        assert!(Value::parse("{\"a\":1").is_err());
        assert!(Value::parse("{\"a\":1} x").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("").is_err());
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        let seed = 0xDEAD_BEEF_CAFE_F00Du64;
        let text = Value::UInt(seed).to_json();
        assert_eq!(Value::parse(&text).unwrap().as_u64(), Some(seed));
    }
}

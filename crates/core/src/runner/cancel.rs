//! Cooperative cancellation for supervised jobs.
//!
//! Rust threads cannot be killed, so the watchdog enforces deadlines
//! cooperatively: every job thread carries a [`CancelToken`], and
//! long-running simulation loops poll the *current thread's* token at
//! step boundaries via [`poll_current`]. When the watchdog fires, the
//! next poll unwinds the job thread with the [`Cancelled`] sentinel,
//! which the supervisor's `catch_unwind` recognizes and converts into a
//! typed timeout error — indistinguishable from the job returning,
//! except for the recorded cause.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Panic payload used to unwind a cancelled job out of arbitrarily deep
/// simulation loops. The supervisor downcasts to this type to tell a
/// timeout apart from a genuine job panic.
#[derive(Clone, Copy, Debug)]
pub struct Cancelled;

/// A shared cancellation flag between the watchdog and one job attempt.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (called by the watchdog).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// Polls the token, unwinding with [`Cancelled`] if it fired. Jobs
    /// call this at step boundaries (directly or via [`poll_current`]).
    pub fn checkpoint(&self) {
        if self.is_cancelled() {
            std::panic::panic_any(Cancelled);
        }
    }
}

thread_local! {
    /// The token of the job currently running on this thread, if any.
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
    /// Whether this thread is a supervised job thread (used to silence
    /// the default panic hook for isolated panics).
    static IN_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs `token` as the current thread's job token for the duration of
/// `f`, and marks the thread as a supervised job thread (so the global
/// panic hook stays quiet — the supervisor reports the failure instead).
pub(crate) fn with_current<R>(token: CancelToken, f: impl FnOnce() -> R) -> R {
    // Reset through a drop guard: job panics (including the Cancelled
    // sentinel) unwind straight through this frame.
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            IN_JOB.with(|f| f.set(false));
            CURRENT.with(|c| *c.borrow_mut() = None);
        }
    }
    CURRENT.with(|c| *c.borrow_mut() = Some(token));
    IN_JOB.with(|f| f.set(true));
    let _reset = Reset;
    f()
}

/// Whether the current thread is running a supervised job.
pub(crate) fn in_job() -> bool {
    IN_JOB.with(|f| f.get())
}

/// The current thread's job token, if one is installed.
///
/// Thread-locals do not cross thread boundaries, so anything that fans
/// work out to helper threads from inside a supervised job — the shard
/// pool in [`crate::runner::scatter`] — captures the token here and
/// re-installs it on each worker, keeping the watchdog's deadline
/// enforceable across the whole fan-out.
pub(crate) fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Polls the current thread's cancellation token, if one is installed.
///
/// This is the hook the simulator's round loops call: outside a
/// supervised job it is a thread-local read and costs nothing
/// measurable; inside one it unwinds with [`Cancelled`] once the
/// watchdog has fired.
pub fn poll_current() {
    CURRENT.with(|c| {
        if let Some(token) = c.borrow().as_ref() {
            token.checkpoint();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.checkpoint(); // must not unwind
        t.cancel();
        assert!(t.is_cancelled());
        let t2 = t.clone();
        assert!(t2.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn checkpoint_unwinds_with_sentinel() {
        let t = CancelToken::new();
        t.cancel();
        let r = std::panic::catch_unwind(|| t.checkpoint());
        let payload = r.expect_err("must unwind");
        assert!(payload.downcast_ref::<Cancelled>().is_some());
    }

    #[test]
    fn poll_current_is_inert_outside_jobs() {
        poll_current(); // no token installed: must be a no-op
    }

    #[test]
    fn poll_current_sees_installed_token() {
        let t = CancelToken::new();
        t.cancel();
        let r = std::panic::catch_unwind(|| {
            with_current(t, || {
                poll_current();
            })
        });
        assert!(r.is_err());
        // The thread-local must be usable again after the unwind cleared.
        poll_current();
    }
}

//! Property-based tests for the token-coherence engine.
//!
//! Invariants checked over arbitrary operation sequences and arbitrary
//! (possibly wrong) snoop destination sets:
//!
//! 1. Token conservation: for every block, cache tokens + memory tokens
//!    equal the total.
//! 2. At most one owner per block.
//! 3. Residence counters always equal the scan count of tagged lines.
//! 4. A *broadcast* write always succeeds (the forward-progress guarantee
//!    behind persistent requests).

use proptest::prelude::*;
use sim_mem::{BlockAddr, Cache, CacheGeometry, LineTag, ReadMode, TokenProtocol};
use sim_vm::VmId;

const N_CORES: usize = 8;
const N_VMS: usize = 4;
const N_BLOCKS: u64 = 24;

#[derive(Clone, Debug)]
enum Op {
    Read { core: usize, block: u64, dest_mask: u8, include_memory: bool, clean: bool },
    Write { core: usize, block: u64, dest_mask: u8, include_memory: bool },
    BroadcastWrite { core: usize, block: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..N_CORES, 0..N_BLOCKS, any::<u8>(), any::<bool>(), any::<bool>())
            .prop_map(|(core, block, dest_mask, include_memory, clean)| Op::Read {
                core,
                block,
                dest_mask,
                include_memory,
                clean
            }),
        (0..N_CORES, 0..N_BLOCKS, any::<u8>(), any::<bool>())
            .prop_map(|(core, block, dest_mask, include_memory)| Op::Write {
                core,
                block,
                dest_mask,
                include_memory
            }),
        (0..N_CORES, 0..N_BLOCKS)
            .prop_map(|(core, block)| Op::BroadcastWrite { core, block }),
    ]
}

fn dests_from_mask(core: usize, mask: u8) -> Vec<usize> {
    (0..N_CORES)
        .filter(|&c| c != core && mask & (1 << c) != 0)
        .collect()
}

fn check_all(caches: &[Cache], tp: &TokenProtocol) {
    for b in 0..N_BLOCKS {
        assert!(
            tp.check_invariant(caches, BlockAddr::new(b)),
            "token invariant broken for block {b}"
        );
    }
    for (i, c) in caches.iter().enumerate() {
        for vm in 0..N_VMS {
            let id = VmId::new(vm as u16);
            let scan = c.lines().filter(|l| l.tag == LineTag::Vm(id)).count() as u64;
            assert_eq!(
                c.residence(id),
                scan,
                "residence counter of {id} on cache {i} diverged"
            );
        }
        let host_scan = c.lines().filter(|l| l.tag == LineTag::Host).count() as u64;
        assert_eq!(c.host_residence(), host_scan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn protocol_preserves_invariants(ops in prop::collection::vec(op_strategy(), 1..200)) {
        // A small cache so evictions actually happen.
        let mut caches = vec![Cache::new(CacheGeometry::new(4 * 2 * 64, 2), N_VMS); N_CORES];
        let mut tp = TokenProtocol::new(N_CORES as u32);

        for (i, op) in ops.iter().enumerate() {
            let tag = LineTag::Vm(VmId::new((i % N_VMS) as u16));
            match *op {
                Op::Read { core, block, dest_mask, include_memory, clean } => {
                    let b = BlockAddr::new(block);
                    let mode = if clean { ReadMode::CleanShared } else { ReadMode::Strict };
                    // Read misses only make sense when the block is absent.
                    if caches[core].probe(b).is_none() {
                        let dests = dests_from_mask(core, dest_mask);
                        let _ = tp.read_miss(&mut caches, core, &dests, b, include_memory, tag, mode);
                    }
                }
                Op::Write { core, block, dest_mask, include_memory } => {
                    let b = BlockAddr::new(block);
                    let writable = caches[core]
                        .probe(b)
                        .is_some_and(|l| l.state.can_write(N_CORES as u32));
                    if !writable {
                        let dests = dests_from_mask(core, dest_mask);
                        let _ = tp.write_miss(&mut caches, core, &dests, b, include_memory, tag);
                    }
                }
                Op::BroadcastWrite { core, block } => {
                    let b = BlockAddr::new(block);
                    let writable = caches[core]
                        .probe(b)
                        .is_some_and(|l| l.state.can_write(N_CORES as u32));
                    if !writable {
                        let dests: Vec<usize> = (0..N_CORES).filter(|&c| c != core).collect();
                        let w = tp.write_miss(&mut caches, core, &dests, b, true, tag);
                        prop_assert!(w.success, "broadcast write must always succeed");
                    }
                }
            }
            check_all(&caches, &tp);
        }
    }

    #[test]
    fn broadcast_read_always_succeeds(
        writes in prop::collection::vec((0..N_CORES, 0..N_BLOCKS), 0..40),
        reader in 0..N_CORES,
        block in 0..N_BLOCKS,
    ) {
        let mut caches = vec![Cache::new(CacheGeometry::new(16 * 4 * 64, 4), N_VMS); N_CORES];
        let mut tp = TokenProtocol::new(N_CORES as u32);
        let tag = LineTag::Vm(VmId::new(0));
        for (core, b) in writes {
            let b = BlockAddr::new(b);
            let dests: Vec<usize> = (0..N_CORES).filter(|&c| c != core).collect();
            let writable = caches[core]
                .probe(b)
                .is_some_and(|l| l.state.can_write(N_CORES as u32));
            if !writable {
                let _ = tp.write_miss(&mut caches, core, &dests, b, true, tag);
            }
        }
        let b = BlockAddr::new(block);
        if caches[reader].probe(b).is_none() {
            let dests: Vec<usize> = (0..N_CORES).filter(|&c| c != reader).collect();
            let r = tp.read_miss(&mut caches, reader, &dests, b, true, tag, ReadMode::Strict);
            prop_assert!(r.success, "broadcast read must always succeed");
        }
    }
}

//! Fig. 9 — cumulative distribution of the core-removal period after a
//! vCPU relocation (counter mechanism, 5 ms migration period).

use vsnoop::experiments::{cdf, removal_periods};
use vsnoop::SystemConfig;
use vsnoop_bench::{f1, heading, scale_from_env, TextTable};

fn main() {
    heading(
        "Figure 9: CDF of core-removal periods (counter, 5 ms migrations)",
        "Time from a vCPU's departure until its old core is removed from\n\
         the VM's map. Paper: most removals complete within ~10 ms;\n\
         blackscholes' counters never reach zero (small L2 working set).",
    );
    let cfg = SystemConfig::paper_default();
    let samples = removal_periods(scale_from_env().for_migration());
    println!("{} removal events collected\n", samples.len());

    // Aggregate CDF over all applications, reported at decile points.
    let mut all: Vec<u64> = samples.iter().map(|s| s.period_cycles).collect();
    if all.is_empty() {
        println!("no removal events (run with a larger scale)");
        return;
    }
    let curve = cdf(&mut all);
    let mut t = TextTable::new(["fraction of removals", "within (scaled ms)"]);
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0] {
        let idx = ((curve.len() as f64 * q).ceil() as usize).clamp(1, curve.len()) - 1;
        let ms = curve[idx].0 as f64 / cfg.cycles_per_ms as f64;
        t.row([format!("{:.0}%", q * 100.0), f1(ms)]);
    }
    t.maybe_dump_csv("fig9").expect("csv dump");
    println!("{t}");

    // Per-application medians, to expose the slow outliers the paper
    // highlights (radix, ferret) and blackscholes' absence.
    let mut t2 = TextTable::new(["workload", "removals", "median ms", "p90 ms"]);
    for app in workloads::simulation_apps() {
        let mut xs: Vec<u64> = samples
            .iter()
            .filter(|s| s.name == app.name)
            .map(|s| s.period_cycles)
            .collect();
        if xs.is_empty() {
            t2.row([app.name.to_string(), "0".into(), "-".into(), "-".into()]);
            continue;
        }
        xs.sort_unstable();
        let med = xs[xs.len() / 2] as f64 / cfg.cycles_per_ms as f64;
        let p90 = xs[(xs.len() * 9 / 10).min(xs.len() - 1)] as f64 / cfg.cycles_per_ms as f64;
        t2.row([app.name.to_string(), xs.len().to_string(), f1(med), f1(p90)]);
    }
    t2.maybe_dump_csv("fig9_t2").expect("csv dump");
    println!("{t2}");
}

//! Trace record / replay: capture exactly the access stream one policy
//! consumed, persist it, and replay it bit-identically under every other
//! policy — the apples-to-apples comparison methodology the experiment
//! harness is built on, shown end to end.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use virtual_snooping::prelude::*;
use virtual_snooping::vsnoop::ReplayWorkload;
use virtual_snooping::workloads::{RecordedTrace, TraceRecorder};

fn main() {
    let cfg = SystemConfig::paper_default();

    // 1. Record a run under the TokenB baseline.
    let wl = Workload::homogeneous(
        profile("specjbb").expect("registered workload"),
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            content_sharing: true,
            ..Default::default()
        },
    );
    let mut recorder = TraceRecorder::new(wl);
    let mut base = Simulator::new(cfg, FilterPolicy::TokenBroadcast, ContentPolicy::Broadcast);
    base.run(&mut recorder, 30_000);
    let (trace, wl) = recorder.finish();
    println!(
        "recorded {} accesses from the TokenB run ({} L2 misses)",
        trace.len(),
        base.stats().l2_misses
    );

    // 2. Persist and reload it (the file format a downstream tool would
    //    exchange).
    let mut bytes = Vec::new();
    trace.write(&mut bytes).expect("serialize trace");
    let trace = RecordedTrace::read(&mut bytes.as_slice()).expect("deserialize trace");
    println!(
        "serialized to {} bytes, reloaded identically\n",
        bytes.len()
    );

    // 3. Replay under every filter policy: same misses, different snoops.
    println!("policy                     L2 misses       snoops    vs tokenB");
    for policy in [
        FilterPolicy::TokenBroadcast,
        FilterPolicy::REGION_SCOUT_4K,
        FilterPolicy::VsnoopBase,
        FilterPolicy::Counter,
    ] {
        let mut replay = ReplayWorkload::new(trace.replay(), &wl);
        let mut sim = Simulator::new(cfg, policy, ContentPolicy::Broadcast);
        sim.run(&mut replay, 30_000);
        let s = sim.stats();
        assert_eq!(
            s.l2_misses,
            base.stats().l2_misses,
            "identical trace must produce identical misses"
        );
        println!(
            "{policy:<24} {misses:>11} {snoops:>12}   {pct:>6.1}%",
            misses = s.l2_misses,
            snoops = s.snoops,
            pct = 100.0 * s.snoops as f64 / base.stats().snoops as f64,
        );
    }
}

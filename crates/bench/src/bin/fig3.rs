//! Fig. 3 — the effect of pinning VMs: undercommitted vs. overcommitted.

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::fig3(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("fig3: {e}");
            std::process::exit(1);
        }
    }
}

//! Multi-tenant service soak: in-process server, many concurrent
//! clients, latency percentiles and shed accounting.
//!
//! ```text
//! loadtest [--clients N] [--tenants N] [--jobs N] [--spin-ms N]
//!          [--workers N] [--queue-cap N] [--max-inflight N]
//!          [--max-queued N] [--pipeline-limit N] [--progress-ms N]
//!          [--deadline-ms N] [--overload] [--chaos] [--chaos-seed N]
//!          [--no-wal]
//! ```
//!
//! Runs the same harness the `perf` binary's `service` bin measures
//! (`vsnoop_bench::service_load`), so a local soak and the gated perf
//! number describe the same scenario. `--overload` shrinks the queues
//! until most submits shed, verifying that saturation produces typed
//! rejections rather than hangs. `--chaos` routes every client
//! through a fault-injecting proxy (torn frames, stalls, cuts,
//! resets; deterministic per `--chaos-seed`) and switches the clients
//! to their retrying mode — the run must still answer every request
//! exactly once. `--no-wal` drops the write-ahead log for a
//! best-effort soak. `--pipeline-limit` caps how many submits a single
//! connection may have in flight before the reactor sheds with the
//! retryable `pipeline_full` reason; `--progress-ms` streams periodic
//! `progress` frames for running jobs (0 disables them).
//!
//! Exits 1 if any request went unanswered (a hang or transport loss),
//! if `--overload` produced no sheds, or if `--chaos` injected no
//! faults (a proxy misconfiguration would otherwise pass vacuously).

use std::process::ExitCode;

use vsnoop::service::TenantQuota;
use vsnoop_bench::service_load::{run_load, LoadOptions};

fn parse_cli() -> Result<(LoadOptions, bool), String> {
    let mut opts = LoadOptions::default();
    let mut overload = false;
    let mut chaos = false;
    let mut chaos_seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let parse_u64 = |flag: &str, v: String| -> Result<u64, String> {
            v.parse().map_err(|e| format!("{flag}: {e}"))
        };
        match arg.as_str() {
            "--clients" => opts.clients = parse_u64("--clients", value("--clients")?)? as usize,
            "--tenants" => {
                opts.tenants = parse_u64("--tenants", value("--tenants")?)?.max(1) as usize;
            }
            "--jobs" => opts.jobs_per_client = parse_u64("--jobs", value("--jobs")?)? as usize,
            "--spin-ms" => opts.spin_ms = parse_u64("--spin-ms", value("--spin-ms")?)?,
            "--workers" => {
                opts.workers = parse_u64("--workers", value("--workers")?)?.max(1) as usize
            }
            "--queue-cap" => {
                opts.queue_cap = parse_u64("--queue-cap", value("--queue-cap")?)? as usize;
            }
            "--max-inflight" => {
                opts.quota.max_inflight =
                    parse_u64("--max-inflight", value("--max-inflight")?)?.max(1) as usize;
            }
            "--max-queued" => {
                opts.quota.max_queued = parse_u64("--max-queued", value("--max-queued")?)? as usize;
            }
            "--pipeline-limit" => {
                opts.pipeline_limit =
                    parse_u64("--pipeline-limit", value("--pipeline-limit")?)?.max(1) as usize;
            }
            "--progress-ms" => {
                opts.progress_ms = Some(parse_u64("--progress-ms", value("--progress-ms")?)?);
            }
            "--deadline-ms" => {
                opts.deadline_ms = parse_u64("--deadline-ms", value("--deadline-ms")?)?;
            }
            "--overload" => overload = true,
            "--chaos" => chaos = true,
            "--chaos-seed" => {
                chaos = true;
                chaos_seed = parse_u64("--chaos-seed", value("--chaos-seed")?)?;
            }
            "--no-wal" => opts.wal = false,
            "--help" | "-h" => {
                return Err(
                    "usage: loadtest [--clients N] [--tenants N] [--jobs N] [--spin-ms N]\n\
                     \u{20}               [--workers N] [--queue-cap N] [--max-inflight N]\n\
                     \u{20}               [--max-queued N] [--pipeline-limit N] [--progress-ms N]\n\
                     \u{20}               [--deadline-ms N] [--overload] [--chaos]\n\
                     \u{20}               [--chaos-seed N] [--no-wal]"
                        .into(),
                );
            }
            other => return Err(format!("unknown argument: {other} (try --help)")),
        }
    }
    if overload {
        // Saturate: tiny queues against the full client herd.
        opts.queue_cap = opts.queue_cap.min(8);
        opts.quota = TenantQuota {
            max_inflight: 1,
            max_queued: 2,
            max_queued_bytes: opts.quota.max_queued_bytes,
        };
    }
    if chaos {
        opts.chaos_seed = Some(chaos_seed);
    }
    Ok((opts, overload))
}

fn main() -> ExitCode {
    let (opts, overload) = match parse_cli() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let report = match run_load(&opts, &mut |msg| eprintln!("[loadtest] {msg}")) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadtest: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "requests={} ok={} failed={} shed={} unanswered={}",
        report.requests,
        report.ok,
        report.failed,
        report.shed_total(),
        report.unanswered
    );
    for (reason, n) in &report.shed {
        println!("  shed {reason}: {n}");
    }
    if opts.chaos_seed.is_some() {
        println!(
            "chaos: faults={} client reconnects={}",
            report.chaos_faults, report.reconnects
        );
    }
    if opts.progress_ms.is_some_and(|ms| ms > 0) {
        println!("progress frames: {}", report.progress_frames);
    }
    println!(
        "latency p50={:.2}ms p99={:.2}ms max={:.2}ms  throughput={:.0} req/s  elapsed={:.2}s",
        report.p50_ms, report.p99_ms, report.max_ms, report.requests_per_sec, report.elapsed_s
    );
    // Server-measured percentiles from the `metrics` wire op, printed
    // next to the client-measured line above (the server resolves to
    // log2 bucket edges, so its p99 may read up to 2x the client's).
    println!(
        "server  p50={:.2}ms p99={:.2}ms (from metrics op)",
        report.server_p50_ms, report.server_p99_ms
    );
    println!("peak RSS: {} MiB", report.peak_rss_bytes / (1024 * 1024));

    if report.unanswered > 0 {
        eprintln!("LOADTEST FAIL: {} requests unanswered", report.unanswered);
        return ExitCode::FAILURE;
    }
    if overload && report.shed_total() == 0 {
        eprintln!("LOADTEST FAIL: overload produced no sheds");
        return ExitCode::FAILURE;
    }
    if opts.chaos_seed.is_some() && report.chaos_faults == 0 {
        eprintln!("LOADTEST FAIL: chaos mode injected no faults");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

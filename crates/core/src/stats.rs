//! Statistics collected by the full-system simulator.
//!
//! Every metric a paper table or figure needs is a counter here: snoop tag
//! lookups (Figs. 7-8), per-agent and per-sharing-type miss decompositions
//! (Fig. 1, Table V), data-holder classification (Table VI), actual data
//! sources, stall cycles for the runtime estimate (Fig. 6), and vCPU-map
//! maintenance events.

use sim_vm::{Agent, SharingType};

/// Aggregate counters of one simulation run.
///
/// Every field is an exact integer counter, so two runs can be compared
/// for *bit-identical* behaviour with `==` — the differential oracle and
/// the optimized-vs-reference engine guard rely on this.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SimStats {
    /// Rounds executed (one access slot per core per round).
    pub rounds: u64,
    /// Total accesses issued.
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (including silent upgrades of E lines).
    pub l2_hits: u64,
    /// Coherence transactions (L2 misses and token-upgrade requests).
    pub l2_misses: u64,
    /// Cache tag lookups caused by snooping, *including* the requester's
    /// own lookup (so a 16-core broadcast counts 16, matching the paper's
    /// "total snoops occurring in all the cores" and its ideal 25% line).
    pub snoops: u64,
    /// Failed transient attempts that were retried.
    pub retries: u64,
    /// Transactions that fell back to a broadcast attempt.
    pub broadcast_fallbacks: u64,
    /// Transactions that exhausted the transient retry ladder (possible
    /// only under fault injection) and escalated to a persistent request.
    pub persistent_requests: u64,
    /// Transactions broadcast because the requester's vCPU-map register
    /// failed validation (invalid bits, or missing the requester's own
    /// core) — the degraded-mode fallback.
    pub degraded_broadcasts: u64,
    /// vCPU-map registers repaired by the hypervisor's periodic audit.
    pub map_repairs: u64,
    /// Misses by guest VMs.
    pub misses_guest: u64,
    /// Misses by dom0.
    pub misses_dom0: u64,
    /// Misses by the hypervisor.
    pub misses_hyp: u64,
    /// Misses to VM-private pages.
    pub misses_private: u64,
    /// Misses to RW-shared pages.
    pub misses_rw_shared: u64,
    /// Misses to content-shared (RO) pages.
    pub misses_ro_shared: u64,
    /// Accesses (L1-level) to content-shared pages.
    pub content_accesses: u64,
    /// Content-shared read misses for which at least one cache anywhere
    /// held a valid copy (Table VI "Cache: all").
    pub holders_any_cache: u64,
    /// ... of which a cache of the requesting VM held a copy
    /// (Table VI "Cache: intra-VM").
    pub holders_intra_vm: u64,
    /// ... or, failing intra-VM, a cache of the friend VM held one
    /// (Table VI "Cache: friend-VM", incremental over intra-VM).
    pub holders_friend_vm: u64,
    /// Content-shared read misses that only memory could serve.
    pub holders_memory: u64,
    /// Transactions whose data came from a cache of the requesting VM.
    pub data_intra_vm: u64,
    /// ... from a cache of another VM.
    pub data_other_vm: u64,
    /// ... from memory.
    pub data_memory: u64,
    /// Dirty write-backs.
    pub writebacks: u64,
    /// Cores added to vCPU maps (relocations).
    pub map_adds: u64,
    /// Cores removed from vCPU maps (counter mechanism).
    pub map_removes: u64,
    /// Per-core stall cycles from miss latencies.
    pub stall_cycles: Vec<u64>,
}

/// Every scalar counter field of [`SimStats`], listed exactly once.
///
/// [`SimStats::delta_since`], [`SimStats::add_delta`] and
/// [`SimStats::counters`] are all generated from this list, so adding a
/// counter to the struct only requires adding it here — and the
/// epoch-reconstruction tests (which compare with the derived
/// `PartialEq`, covering **all** fields) fail loudly if it is
/// forgotten.
macro_rules! for_each_counter {
    ($cb:ident) => {
        $cb!(
            rounds,
            accesses,
            l1_hits,
            l2_hits,
            l2_misses,
            snoops,
            retries,
            broadcast_fallbacks,
            persistent_requests,
            degraded_broadcasts,
            map_repairs,
            misses_guest,
            misses_dom0,
            misses_hyp,
            misses_private,
            misses_rw_shared,
            misses_ro_shared,
            content_accesses,
            holders_any_cache,
            holders_intra_vm,
            holders_friend_vm,
            holders_memory,
            data_intra_vm,
            data_other_vm,
            data_memory,
            writebacks,
            map_adds,
            map_removes
        );
    };
}

impl SimStats {
    /// Creates zeroed statistics for `n_cores`.
    pub fn new(n_cores: usize) -> Self {
        SimStats {
            stall_cycles: vec![0; n_cores],
            ..Default::default()
        }
    }

    /// The difference `self - prev` over every counter field (and
    /// per-core stall cycles) — the per-epoch delta snapshot.
    ///
    /// # Panics
    ///
    /// Panics if any counter of `prev` exceeds the corresponding
    /// counter of `self` (deltas are only meaningful against an earlier
    /// snapshot of the same run), or if the core counts differ.
    pub fn delta_since(&self, prev: &SimStats) -> SimStats {
        assert_eq!(
            self.stall_cycles.len(),
            prev.stall_cycles.len(),
            "delta between different core counts"
        );
        let mut d = SimStats::new(self.stall_cycles.len());
        macro_rules! sub {
            ($($f:ident),+ $(,)?) => {
                $( d.$f = self.$f.checked_sub(prev.$f)
                    .expect(concat!("counter ", stringify!($f), " went backwards")); )+
            };
        }
        for_each_counter!(sub);
        for (i, (a, b)) in self.stall_cycles.iter().zip(&prev.stall_cycles).enumerate() {
            d.stall_cycles[i] = a.checked_sub(*b).expect("stall_cycles went backwards");
        }
        d
    }

    /// Adds a delta (as produced by [`SimStats::delta_since`]) onto
    /// this aggregate; the inverse used by the reconstruction tests.
    ///
    /// # Panics
    ///
    /// Panics if the core counts differ.
    pub fn add_delta(&mut self, d: &SimStats) {
        assert_eq!(
            self.stall_cycles.len(),
            d.stall_cycles.len(),
            "delta between different core counts"
        );
        macro_rules! add {
            ($($f:ident),+ $(,)?) => { $( self.$f += d.$f; )+ };
        }
        for_each_counter!(add);
        for (i, b) in d.stall_cycles.iter().enumerate() {
            self.stall_cycles[i] += b;
        }
    }

    /// Every scalar counter as a `(name, value)` pair, in declaration
    /// order — the export surface for epoch snapshots and telemetry.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut out = Vec::new();
        macro_rules! push {
            ($($f:ident),+ $(,)?) => { $( out.push((stringify!($f), self.$f)); )+ };
        }
        for_each_counter!(push);
        out
    }

    /// L2 miss ratio over all accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.accesses as f64
        }
    }

    /// Share of L2 misses issued by the hypervisor + dom0 (Fig. 1's
    /// broadcast-required fraction), in `[0, 1]`.
    pub fn host_miss_fraction(&self) -> f64 {
        if self.l2_misses == 0 {
            0.0
        } else {
            (self.misses_dom0 + self.misses_hyp) as f64 / self.l2_misses as f64
        }
    }

    /// Share of L2 misses to content-shared pages (Table V right column).
    pub fn content_miss_fraction(&self) -> f64 {
        if self.l2_misses == 0 {
            0.0
        } else {
            self.misses_ro_shared as f64 / self.l2_misses as f64
        }
    }

    /// Share of accesses to content-shared pages (Table V left column).
    pub fn content_access_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.content_accesses as f64 / self.accesses as f64
        }
    }

    /// Estimated runtime in cycles: issue time plus the worst core's
    /// accumulated miss stalls (the critical path).
    pub fn runtime_cycles(&self, cycles_per_access: u64) -> u64 {
        self.rounds * cycles_per_access + self.stall_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Records a miss by `agent` to a page of `sharing` type.
    pub fn count_miss(&mut self, agent: Agent, sharing: SharingType) {
        self.l2_misses += 1;
        match agent {
            Agent::Guest(_) => self.misses_guest += 1,
            Agent::Dom0 => self.misses_dom0 += 1,
            Agent::Hypervisor => self.misses_hyp += 1,
        }
        match sharing {
            SharingType::VmPrivate => self.misses_private += 1,
            SharingType::RwShared => self.misses_rw_shared += 1,
            SharingType::RoShared => self.misses_ro_shared += 1,
        }
    }
}

/// One core-removal event under the counter mechanism (Fig. 9's metric).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RemovalEvent {
    /// Cycle at which the core was removed from the VM's map.
    pub cycle: u64,
    /// The removed core's index.
    pub core: usize,
    /// The VM whose map shrank.
    pub vm: usize,
    /// Cycles between the vCPU's departure from the core and the removal
    /// (`None` when the core was removed without a pending relocation,
    /// e.g. it never hosted the VM's data again after a previous removal).
    pub period: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_vm::{VcpuId, VmId};

    #[test]
    fn fractions_guard_division_by_zero() {
        let s = SimStats::new(4);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.host_miss_fraction(), 0.0);
        assert_eq!(s.content_miss_fraction(), 0.0);
        assert_eq!(s.content_access_fraction(), 0.0);
    }

    #[test]
    fn count_miss_decomposes() {
        let mut s = SimStats::new(2);
        s.count_miss(
            Agent::Guest(VcpuId::new(VmId::new(0), 0)),
            SharingType::VmPrivate,
        );
        s.count_miss(Agent::Dom0, SharingType::RwShared);
        s.count_miss(Agent::Hypervisor, SharingType::RwShared);
        s.count_miss(
            Agent::Guest(VcpuId::new(VmId::new(1), 0)),
            SharingType::RoShared,
        );
        assert_eq!(s.l2_misses, 4);
        assert_eq!(s.misses_guest, 2);
        assert_eq!(s.misses_dom0, 1);
        assert_eq!(s.misses_hyp, 1);
        assert_eq!(s.misses_private, 1);
        assert_eq!(s.misses_rw_shared, 2);
        assert_eq!(s.misses_ro_shared, 1);
        assert!((s.host_miss_fraction() - 0.5).abs() < 1e-12);
        assert!((s.content_miss_fraction() - 0.25).abs() < 1e-12);
    }

    /// A stats block with every counter distinct and nonzero, so a
    /// forgotten field in the delta machinery cannot cancel out.
    fn dense(offset: u64) -> SimStats {
        let mut s = SimStats::new(3);
        for (i, (_, _)) in s.clone().counters().iter().enumerate() {
            // Write through counters()' declaration order via add_delta
            // round-trip: build a delta with exactly one field set.
            let mut d = SimStats::new(3);
            macro_rules! set_ith {
                ($($f:ident),+ $(,)?) => {{
                    let mut j = 0usize;
                    $( if j == i { d.$f = offset + i as u64 + 1; } j += 1; )+
                    let _ = j;
                }};
            }
            for_each_counter!(set_ith);
            s.add_delta(&d);
        }
        s.stall_cycles = vec![offset + 100, offset + 200, offset + 300];
        s
    }

    #[test]
    fn delta_then_add_reconstructs_every_field() {
        let early = dense(10);
        let mut late = dense(500);
        // Make `late` strictly componentwise >= `early`.
        late.add_delta(&early);
        let delta = late.delta_since(&early);
        let mut rebuilt = early.clone();
        rebuilt.add_delta(&delta);
        // Derived PartialEq compares *all* fields, so any counter the
        // for_each_counter! list missed would fail here.
        assert_eq!(rebuilt, late);
    }

    #[test]
    fn counters_exports_in_declaration_order() {
        let s = dense(0);
        let names: Vec<&str> = s.counters().iter().map(|(n, _)| *n).collect();
        assert_eq!(names.first(), Some(&"rounds"));
        assert_eq!(names.last(), Some(&"map_removes"));
        assert_eq!(names.len(), 28, "counter list out of sync with struct");
        // All values distinct and nonzero by construction.
        for (name, v) in s.counters() {
            assert!(v > 0, "{name} not covered by dense()");
        }
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn delta_rejects_reversed_snapshots() {
        let early = dense(10);
        let mut late = dense(500);
        late.add_delta(&early);
        let _ = early.delta_since(&late);
    }

    #[test]
    fn runtime_uses_worst_core() {
        let mut s = SimStats::new(3);
        s.rounds = 100;
        s.stall_cycles = vec![5, 50, 20];
        assert_eq!(s.runtime_cycles(2), 250);
    }
}

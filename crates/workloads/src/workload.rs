//! The synthetic workload generator.
//!
//! A [`Workload`] owns the simulated machine's memory layout (per-VM
//! private regions, per-VM content regions deduplicated by the hypervisor,
//! and the hypervisor/dom0 pools), the sharing directory, and the RNG, and
//! produces the access stream the coherence simulator consumes.
//!
//! Layout decisions mirror the paper's environment:
//!
//! * each VM's private pages are disjoint host pages (memory isolation,
//!   Section II-A);
//! * the content region of every VM has identical page contents, so the
//!   ideal dedup scan (Section VI-A) folds them onto one read-only copy
//!   per page; a content-pool store triggers copy-on-write;
//! * hypervisor and dom0 activity streams through large RW-shared pools so
//!   host accesses are (almost) always L2 misses that must be broadcast,
//!   matching how Fig. 1 counts them.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim_vm::{
    Agent, ContentHash, ContentSharer, MemoryMap, PageRange, SharingDirectory, SharingType, VcpuId,
    VmId, VmSpec, VmWorkload, WorkloadBehavior,
};

use crate::profiles::{AppProfile, SchedParams};
use crate::trace::{AccessStream, TraceAccess};
use crate::zipf::ZipfSampler;

/// Bytes per page / block, duplicated here to avoid a dependency cycle
/// with the cache crate (checked against `sim-mem` in the integration
/// tests).
const PAGE_BYTES: u64 = 4096;
const BLOCK_BYTES: u64 = 64;
const BLOCKS_PER_PAGE: u64 = PAGE_BYTES / BLOCK_BYTES;

/// Size of the hypervisor's and dom0's streaming pools, in pages. Large
/// enough that host accesses essentially never hit in an L2 cache.
const HOST_POOL_PAGES: u64 = 8192;

/// Configuration of a workload instance.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of vCPUs per VM (the paper uses 4).
    pub vcpus_per_vm: u16,
    /// RNG seed; the stream is deterministic given the seed.
    pub seed: u64,
    /// Include hypervisor/dom0 access slots (Fig. 1 experiments). The
    /// simulation-section experiments disable this, matching
    /// Virtual-GEMS's lack of a running hypervisor.
    pub host_activity: bool,
    /// Run the ideal content dedup scan at construction (Section VI).
    pub content_sharing: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            vcpus_per_vm: 4,
            seed: 0xA11CE,
            host_activity: false,
            content_sharing: false,
        }
    }
}

#[derive(Clone)]
struct VmPools {
    /// Per-vCPU thread-local chunks, laid out consecutively: chunk of
    /// vCPU *i* starts at `chunks.base() + i * chunk_pages`.
    chunks: PageRange,
    chunk_pages: u64,
    /// The VM-wide shared heap.
    shared: PageRange,
    content: PageRange,
    chunk_zipf: ZipfSampler,
    shared_zipf: ZipfSampler,
    content_zipf: ZipfSampler,
}

/// A running workload: memory layout, sharing state, and access generator.
///
/// # Examples
///
/// ```
/// use workloads::{Workload, WorkloadConfig, profile, AccessStream};
/// use sim_vm::{VcpuId, VmId};
///
/// let mut wl = Workload::homogeneous(profile("fft").unwrap(), 4, WorkloadConfig::default());
/// let a = wl.next_access(VcpuId::new(VmId::new(0), 0));
/// assert!(!a.agent.is_host()); // host activity disabled by default
/// ```
///
/// A `Workload` is `Clone`: the copy captures the full memory layout,
/// sharing state, reuse bursts, *and the RNG state*, so a clone taken
/// after a warm-up phase continues the bit-identical access stream.
/// This is what the simulator's warm-state snapshot layer
/// (`Simulator::snapshot` in the `vsnoop` crate) forks instead of
/// regenerating the warm-up prefix.
#[derive(Clone)]
pub struct Workload {
    profiles: Vec<&'static AppProfile>,
    cfg: WorkloadConfig,
    mem: MemoryMap,
    dir: SharingDirectory,
    content: ContentSharer,
    pools: Vec<VmPools>,
    hyp_pool: PageRange,
    dom0_pool: PageRange,
    hyp_cursor: u64,
    dom0_cursor: u64,
    /// Per-vCPU in-flight reuse burst: the address being re-touched, the
    /// store probability of its class, and how many repeats remain.
    bursts: std::collections::HashMap<VcpuId, (u64, f64, u64)>,
    rng: SmallRng,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field(
                "apps",
                &self.profiles.iter().map(|p| p.name).collect::<Vec<_>>(),
            )
            .field("vms", &self.profiles.len())
            .field("vcpus_per_vm", &self.cfg.vcpus_per_vm)
            .finish_non_exhaustive()
    }
}

impl Workload {
    /// Builds a workload running `profile` on each of `n_vms` VMs (the
    /// paper's homogeneous-consolidation setup).
    pub fn homogeneous(profile: &'static AppProfile, n_vms: usize, cfg: WorkloadConfig) -> Self {
        Workload::new(vec![profile; n_vms], cfg)
    }

    /// Builds a workload with one profile per VM.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn new(profiles: Vec<&'static AppProfile>, cfg: WorkloadConfig) -> Self {
        assert!(!profiles.is_empty(), "need at least one VM");
        let mut mem = MemoryMap::new();
        let mut dir = SharingDirectory::new();
        let mut content = ContentSharer::new();
        let mut pools = Vec::with_capacity(profiles.len());

        for (i, p) in profiles.iter().enumerate() {
            let vm = VmId::new(i as u16);
            let chunk_pages = p.trace.private_pages;
            let chunks = mem.alloc_region(chunk_pages * u64::from(cfg.vcpus_per_vm));
            let shared = mem.alloc_region(p.trace.shared_pages);
            for page in chunks.iter().chain(shared.iter()) {
                dir.register(page, SharingType::VmPrivate, Some(vm));
            }
            let content_region = mem.alloc_region(p.trace.content_pages);
            for (j, page) in content_region.iter().enumerate() {
                dir.register(page, SharingType::VmPrivate, Some(vm));
                // Identical contents across VMs running the same app: page j
                // of every instance hashes to the same value.
                content.set_content(
                    page,
                    vm,
                    ContentHash((p.name.len() as u64) << 32 | j as u64),
                );
            }
            pools.push(VmPools {
                chunks,
                chunk_pages,
                shared,
                content: content_region,
                chunk_zipf: ZipfSampler::new(chunk_pages as usize, p.trace.zipf_s),
                shared_zipf: ZipfSampler::new(p.trace.shared_pages as usize, p.trace.shared_zipf),
                content_zipf: ZipfSampler::new(
                    p.trace.content_pages as usize,
                    p.trace.content_zipf,
                ),
            });
        }

        let hyp_pool = mem.alloc_region(HOST_POOL_PAGES);
        let dom0_pool = mem.alloc_region(HOST_POOL_PAGES);
        for page in hyp_pool.iter().chain(dom0_pool.iter()) {
            dir.register(page, SharingType::RwShared, None);
        }

        if cfg.content_sharing {
            content.scan(&mut dir);
        }

        Workload {
            profiles,
            cfg,
            mem,
            dir,
            content,
            pools,
            hyp_pool,
            dom0_pool,
            hyp_cursor: 0,
            dom0_cursor: 0,
            bursts: std::collections::HashMap::new(),
            rng: SmallRng::seed_from_u64(cfg.seed),
        }
    }

    /// Number of VMs.
    pub fn n_vms(&self) -> usize {
        self.profiles.len()
    }

    /// vCPUs per VM.
    pub fn vcpus_per_vm(&self) -> u16 {
        self.cfg.vcpus_per_vm
    }

    /// The VM specifications of this workload (memory sizes included).
    pub fn vm_specs(&self) -> Vec<VmSpec> {
        self.profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                VmSpec::new(
                    VmId::new(i as u16),
                    self.cfg.vcpus_per_vm,
                    p.trace.private_pages * u64::from(self.cfg.vcpus_per_vm)
                        + p.trace.shared_pages
                        + p.trace.content_pages,
                )
            })
            .collect()
    }

    /// The application running on `vm`.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    pub fn app(&self, vm: VmId) -> &'static AppProfile {
        self.profiles[vm.index()]
    }

    /// The hypervisor's page-sharing directory (read-only view; only the
    /// workload mutates it, via copy-on-write).
    pub fn directory(&self) -> &SharingDirectory {
        &self.dir
    }

    /// The content-sharing state (friend-VM queries, CoW statistics).
    pub fn content(&self) -> &ContentSharer {
        &self.content
    }

    /// Total host-physical pages allocated.
    pub fn allocated_pages(&self) -> u64 {
        self.mem.allocated_pages()
    }

    fn host_access(&mut self, pool: PageRange, cursor: &mut u64, agent: Agent) -> TraceAccess {
        // Stream sequentially through the pool, block by block: cold misses.
        let blocks = pool.len() * BLOCKS_PER_PAGE;
        let b = *cursor % blocks;
        *cursor += 1;
        let page = pool.base() + b / BLOCKS_PER_PAGE;
        let addr = page * PAGE_BYTES + (b % BLOCKS_PER_PAGE) * BLOCK_BYTES;
        TraceAccess {
            agent,
            addr,
            write: self.rng.gen::<f64>() < 0.3,
        }
    }
}

impl AccessStream for Workload {
    fn next_access(&mut self, vcpu: VcpuId) -> TraceAccess {
        let vm = vcpu.vm();
        let p = self.profiles[vm.index()].trace;

        // Temporal locality: finish the in-flight burst before drawing a
        // fresh block. Repeats re-roll the store flag so bursts exercise
        // both load and store paths.
        if let Some(&(addr, wf, left)) = self.bursts.get(&vcpu) {
            if left > 0 {
                self.bursts.insert(vcpu, (addr, wf, left - 1));
                return TraceAccess {
                    agent: Agent::Guest(vcpu),
                    addr,
                    write: self.rng.gen::<f64>() < wf,
                };
            }
        }

        if self.cfg.host_activity {
            let r: f64 = self.rng.gen();
            if r < p.hyp_frac {
                let pool = self.hyp_pool;
                let mut cursor = self.hyp_cursor;
                let a = self.host_access(pool, &mut cursor, Agent::Hypervisor);
                self.hyp_cursor = cursor;
                return a;
            } else if r < p.hyp_frac + p.dom0_frac {
                let pool = self.dom0_pool;
                let mut cursor = self.dom0_cursor;
                let a = self.host_access(pool, &mut cursor, Agent::Dom0);
                self.dom0_cursor = cursor;
                return a;
            }
        }

        let pools = &self.pools[vm.index()];
        let (page, write, class_wf) = if self.rng.gen::<f64>() < p.content_frac {
            // Content-pool access: resolve through the dedup remapping.
            let idx = pools.content_zipf.sample(&mut self.rng) as u64;
            let guest_page = pools.content.page(idx);
            let write = self.rng.gen::<f64>() < p.content_write_frac;
            if write && self.cfg.content_sharing {
                // A store to a shared page traps to the hypervisor, which
                // breaks sharing via copy-on-write; the store then lands on
                // the fresh private copy.
                if let Some(new_page) =
                    self.content
                        .copy_on_write(guest_page, vm, &mut self.mem, &mut self.dir)
                {
                    (new_page, true, p.content_write_frac)
                } else {
                    (self.content.resolve(guest_page), true, p.content_write_frac)
                }
            } else {
                (
                    self.content.resolve(guest_page),
                    write,
                    p.content_write_frac,
                )
            }
        } else if self.rng.gen::<f64>() < p.vm_shared_frac {
            // The VM-wide shared heap (cold, and contended between the
            // VM's vCPUs).
            let idx = pools.shared_zipf.sample(&mut self.rng) as u64;
            (
                pools.shared.page(idx),
                self.rng.gen::<f64>() < p.write_frac,
                p.write_frac,
            )
        } else {
            // The vCPU's thread-local chunk (hot; stays L2-resident).
            let idx = pools.chunk_zipf.sample(&mut self.rng) as u64;
            let base = pools.chunks.base() + vcpu.index() as u64 * pools.chunk_pages;
            (
                base + idx,
                self.rng.gen::<f64>() < p.write_frac,
                p.write_frac,
            )
        };

        let block = self.rng.gen_range(0..BLOCKS_PER_PAGE);
        let addr = page * PAGE_BYTES + block * BLOCK_BYTES;
        if p.reuse_burst > 1 {
            self.bursts
                .insert(vcpu, (addr, class_wf, p.reuse_burst - 1));
        }
        TraceAccess {
            agent: Agent::Guest(vcpu),
            addr,
            write,
        }
    }
}

/// Converts an application's scheduler parameters into the credit
/// scheduler's tick-based behaviour.
pub fn to_behavior(s: &SchedParams, tick_ms: f64) -> WorkloadBehavior {
    WorkloadBehavior {
        mean_busy_ticks: s.mean_busy_ms / tick_ms,
        mean_blocked_ticks: s.mean_blocked_ms / tick_ms,
        mean_parallel_ticks: s.mean_parallel_ms / tick_ms,
        mean_serial_ticks: s.mean_serial_ms / tick_ms,
        work_ticks: s.work_ms / tick_ms,
        migration_penalty_ticks: s.migration_penalty_ms / tick_ms,
    }
}

/// Builds the scheduler's VM list for `n_vms` instances of `app` (with
/// `vcpus_per_vm` vCPUs each) plus a floating dom0 whose load reflects the
/// application's I/O intensity.
pub fn sched_vms(
    app: &AppProfile,
    n_vms: usize,
    vcpus_per_vm: u16,
    tick_ms: f64,
) -> Vec<VmWorkload> {
    let mut out: Vec<VmWorkload> = (0..n_vms)
        .map(|i| VmWorkload {
            spec: VmSpec::new(VmId::new(i as u16), vcpus_per_vm, 0),
            behavior: to_behavior(&app.sched, tick_ms),
            background: false,
        })
        .collect();
    // Dom0: short, frequent busy bursts (I/O completion handling); blocked
    // time sized so its long-run load is `dom0_load` of one core. Frequent
    // short bursts displace guest vCPUs more often than rare long ones,
    // which is what drives undercommitted relocation (Table I).
    let load = app.sched.dom0_load.clamp(0.005, 0.95);
    let busy_ms = 0.3;
    let blocked_ms = busy_ms * (1.0 - load) / load;
    out.push(VmWorkload {
        spec: VmSpec::new(VmId::new(n_vms as u16), 1, 0),
        behavior: WorkloadBehavior {
            mean_busy_ticks: busy_ms / tick_ms,
            mean_blocked_ticks: blocked_ms / tick_ms,
            mean_parallel_ticks: f64::INFINITY,
            mean_serial_ticks: 0.0,
            work_ticks: f64::INFINITY,
            migration_penalty_ticks: 0.0,
        },
        background: true,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::profile;

    fn vcpu(vm: u16, i: u16) -> VcpuId {
        VcpuId::new(VmId::new(vm), i)
    }

    #[test]
    fn regions_are_disjoint_across_vms() {
        let wl = Workload::homogeneous(profile("fft").unwrap(), 4, WorkloadConfig::default());
        let specs = wl.vm_specs();
        assert_eq!(specs.len(), 4);
        // 4 VMs of fft (4 vCPU chunks + shared heap + content pool each)
        // plus the two host pools: the allocator handed out the exact
        // total.
        let t = profile("fft").unwrap().trace;
        let per_vm = t.private_pages * 4 + t.shared_pages + t.content_pages;
        assert_eq!(wl.allocated_pages(), 4 * per_vm + 2 * 8192);
        assert_eq!(specs[0].memory_pages(), per_vm);
    }

    #[test]
    fn guest_accesses_stay_in_own_vm_pages_without_sharing() {
        let mut wl = Workload::homogeneous(profile("ocean").unwrap(), 2, WorkloadConfig::default());
        for i in 0..2000 {
            let v = vcpu((i % 2) as u16, 0);
            let a = wl.next_access(v);
            let page = a.addr / PAGE_BYTES;
            let owner = wl.directory().owner(page);
            assert_eq!(owner, Some(v.vm()), "access outside the VM's pages");
        }
    }

    #[test]
    fn content_sharing_folds_pages_across_vms() {
        let cfg = WorkloadConfig {
            content_sharing: true,
            ..Default::default()
        };
        let mut wl = Workload::homogeneous(profile("blackscholes").unwrap(), 4, cfg);
        // Generate accesses from two different VMs to the content pool and
        // observe identical host pages being touched.
        let mut pages0 = std::collections::HashSet::new();
        let mut pages1 = std::collections::HashSet::new();
        for _ in 0..4000 {
            let a0 = wl.next_access(vcpu(0, 0));
            let a1 = wl.next_access(vcpu(1, 0));
            if wl.directory().sharing(a0.addr / PAGE_BYTES) == SharingType::RoShared {
                pages0.insert(a0.addr / PAGE_BYTES);
            }
            if wl.directory().sharing(a1.addr / PAGE_BYTES) == SharingType::RoShared {
                pages1.insert(a1.addr / PAGE_BYTES);
            }
        }
        assert!(
            pages0.intersection(&pages1).next().is_some(),
            "VMs must touch common deduplicated pages"
        );
    }

    #[test]
    fn content_write_triggers_cow() {
        // A custom profile with a meaningful content write fraction (the
        // calibrated profiles use 0 so Table V's sharing stays intact).
        let mut custom = *profile("blackscholes").unwrap();
        custom.trace.content_write_frac = 0.02;
        let custom: &'static AppProfile = Box::leak(Box::new(custom));
        let cfg = WorkloadConfig {
            content_sharing: true,
            seed: 9,
            ..Default::default()
        };
        let mut wl = Workload::homogeneous(custom, 2, cfg);
        for _ in 0..50_000 {
            let _ = wl.next_access(vcpu(0, 0));
            if wl.content().cow_events() > 0 {
                break;
            }
        }
        assert!(wl.content().cow_events() > 0, "no CoW after 50k accesses");
    }

    #[test]
    fn host_activity_produces_host_agents_at_roughly_configured_rate() {
        let cfg = WorkloadConfig {
            host_activity: true,
            ..Default::default()
        };
        let p = profile("SPECweb").unwrap();
        let mut wl = Workload::homogeneous(p, 2, cfg);
        let n = 200_000;
        let mut host = 0;
        for i in 0..n {
            let a = wl.next_access(vcpu((i % 2) as u16, (i % 4) as u16));
            if a.agent.is_host() {
                host += 1;
                let page = a.addr / PAGE_BYTES;
                assert_eq!(wl.directory().sharing(page), SharingType::RwShared);
            }
        }
        // Host slots are drawn on *fresh* accesses only (burst repeats
        // continue the guest stream), so the per-access rate is the
        // configured fraction divided by the reuse burst length.
        let expect = (p.trace.hyp_frac + p.trace.dom0_frac) * n as f64 / p.trace.reuse_burst as f64;
        let got = host as f64;
        assert!(
            (got - expect).abs() < expect * 0.3,
            "host slot rate off: got {got}, expected ~{expect}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut wl =
                Workload::homogeneous(profile("radix").unwrap(), 2, WorkloadConfig::default());
            (0..100)
                .map(|_| wl.next_access(vcpu(0, 0)).addr)
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn sched_vms_include_background_dom0() {
        let app = profile("dedup").unwrap();
        let vms = sched_vms(app, 4, 4, 0.1);
        assert_eq!(vms.len(), 5);
        assert!(vms[4].background);
        assert_eq!(vms[4].spec.n_vcpus(), 1);
        assert!(vms[..4].iter().all(|w| !w.background));
        let b = to_behavior(&app.sched, 0.1);
        assert!((b.mean_busy_ticks - 8.0).abs() < 1e-9);
    }
}

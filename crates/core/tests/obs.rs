//! Integration tests for the observability layer: flight-recorder
//! dumps on checker violations, job panics and watchdog timeouts;
//! telemetry lifecycle records; epoch-delta conservation; and the
//! zero-cost-when-off contract.
//!
//! The trace directory and the enabled flag are process-global, so
//! every test that turns tracing on holds [`OBS_LOCK`] and restores
//! the disabled state through a drop guard.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use vsnoop::runner::{json::Value, run_campaign, Job, RunnerConfig};
use vsnoop::{CheckerConfig, ContentPolicy, FilterPolicy, Simulator, SystemConfig};
use workloads::{profile, Workload, WorkloadConfig};

/// Serializes tests that flip the process-global tracing state.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// A scratch directory unique to one test, cleaned before use.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vsnoop-obs-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Enables tracing into `dir` for the guard's lifetime, then disables
/// it again — even when the test body panics.
struct Traced;

impl Traced {
    fn new(dir: &Path) -> Self {
        vsnoop::obs::flight::clear_ring();
        vsnoop::obs::set_trace_dir(Some(dir.to_path_buf()));
        Traced
    }
}

impl Drop for Traced {
    fn drop(&mut self) {
        vsnoop::obs::set_trace_dir(None);
        vsnoop::obs::flight::clear_ring();
    }
}

fn workload(cfg: &SystemConfig, seed: u64) -> Workload {
    Workload::homogeneous(
        profile("fft").expect("registered"),
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            seed,
            ..Default::default()
        },
    )
}

/// Telemetry lines (skipping none — every line must parse).
fn telemetry_lines(dir: &std::path::Path) -> Vec<Value> {
    let text = std::fs::read_to_string(dir.join("telemetry.jsonl")).expect("telemetry.jsonl");
    text.lines()
        .map(|l| Value::parse(l).expect("telemetry line parses"))
        .collect()
}

fn events_named<'a>(lines: &'a [Value], event: &str) -> Vec<&'a Value> {
    lines
        .iter()
        .filter(|v| v.get("event").and_then(Value::as_str) == Some(event))
        .collect()
}

fn quiet() -> impl FnMut(&str) {
    |_line: &str| {}
}

#[test]
fn tracing_off_records_nothing() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert!(!vsnoop::obs::enabled(), "tests start with tracing off");
    vsnoop::obs::flight::clear_ring();

    let cfg = SystemConfig::small_test();
    let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
    let mut wl = workload(&cfg, 0xA11CE);
    sim.run(&mut wl, 300);

    assert!(sim.stats().l2_misses > 0, "the run must do real work");
    assert_eq!(vsnoop::obs::flight::recorded_len(), 0);
    assert_eq!(vsnoop::obs::flight::recorded_total(), 0);
    assert_eq!(vsnoop::obs::dump_flight("panic"), None);
}

#[test]
fn checker_violation_dumps_flight_ring() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch("violation");
    let _t = Traced::new(&dir);

    let (dump_path, last_before_kill, violation_cycle) = vsnoop::obs::with_scope("viol", || {
        let cfg = SystemConfig::small_test();
        let mut sim = Simulator::new(cfg, FilterPolicy::Counter, ContentPolicy::Broadcast);
        sim.enable_checker(CheckerConfig::default());
        let mut wl = workload(&cfg, 0xBEEF);
        sim.run(&mut wl, 400);
        assert!(
            vsnoop::obs::flight::recorded_total() > 0,
            "tracing on must record transactions"
        );
        let last = vsnoop::obs::flight::last_event().expect("ring non-empty");

        sim.debug_corrupt_token_state()
            .expect("a cached line to corrupt");
        sim.run_checker_sweep();
        let ch = sim.checker().expect("checker enabled");
        assert!(
            ch.total_violations() > 0,
            "corruption must trip the checker"
        );
        let violation_cycle = ch.violations().last().expect("recorded violation").cycle;
        (
            dir.join("flight-viol-violation.jsonl"),
            last,
            violation_cycle,
        )
    });

    // The dump exists, carries the schema header, and its final event
    // is the last transaction recorded before the checker killed the
    // run — the event closest to the violation.
    let text = std::fs::read_to_string(&dump_path).expect("violation flight dump written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "header plus at least one event");
    let header = Value::parse(lines[0]).unwrap();
    assert_eq!(
        header.get("schema").and_then(Value::as_str),
        Some(vsnoop::obs::flight::FLIGHT_SCHEMA)
    );
    assert_eq!(
        header.get("reason").and_then(Value::as_str),
        Some("violation")
    );
    let last_line = Value::parse(lines.last().unwrap()).unwrap();
    assert_eq!(
        last_line.get("cycle").and_then(Value::as_u64),
        Some(last_before_kill.cycle)
    );
    assert_eq!(
        last_line.get("block").and_then(Value::as_u64),
        Some(last_before_kill.block)
    );

    // The telemetry stream carries the matching violation record.
    let lines = telemetry_lines(&dir);
    let viol = events_named(&lines, "checker_violation");
    assert_eq!(viol.len(), 1, "first violation latches exactly one record");
    assert_eq!(
        viol[0].get("cycle").and_then(Value::as_u64),
        Some(violation_cycle),
        "the sweep reports at the cycle it ran"
    );
    assert_eq!(
        viol[0].get("flight_dump").and_then(Value::as_str),
        Some(dump_path.display().to_string().as_str())
    );
}

#[test]
fn job_panic_dumps_flight_ring_and_emits_lifecycle() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch("panic");
    let _t = Traced::new(&dir);

    let job = Job::new("boomjob", 7, Value::obj(vec![]), |_ctx| {
        let cfg = SystemConfig::small_test();
        let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
        let mut wl = workload(&cfg, 7);
        sim.run(&mut wl, 200);
        panic!("deliberate obs test panic");
    });
    let report = run_campaign(&[job], &RunnerConfig::default(), &mut quiet()).unwrap();
    assert_eq!(report.failed(), 1);

    // The job thread's ring was dumped before the panic propagated.
    let dump = dir.join("flight-boomjob-panic.jsonl");
    let text = std::fs::read_to_string(&dump).expect("panic flight dump written");
    let header = Value::parse(text.lines().next().unwrap()).unwrap();
    assert_eq!(header.get("scope").and_then(Value::as_str), Some("boomjob"));
    assert_eq!(header.get("reason").and_then(Value::as_str), Some("panic"));

    let lines = telemetry_lines(&dir);
    assert_eq!(events_named(&lines, "job_start").len(), 1);
    let failed = events_named(&lines, "job_failed");
    assert_eq!(failed.len(), 1);
    assert_eq!(
        failed[0].get("error_kind").and_then(Value::as_str),
        Some("panic")
    );
    assert!(
        failed[0].get("wall_ms").and_then(Value::as_u64).is_some(),
        "terminal records carry wall-clock timing"
    );
}

#[test]
fn watchdog_timeout_dumps_flight_ring() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch("timeout");
    let _t = Traced::new(&dir);

    // The simulator polls the cancel token at round boundaries, so the
    // watchdog's deadline unwinds this loop cooperatively.
    let job = Job::new("slowjob", 7, Value::obj(vec![]), |_ctx| {
        let cfg = SystemConfig::small_test();
        let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
        let mut wl = workload(&cfg, 9);
        loop {
            sim.run(&mut wl, 50);
        }
    });
    let cfg = RunnerConfig {
        timeout: Some(Duration::from_millis(150)),
        ..Default::default()
    };
    let report = run_campaign(&[job], &cfg, &mut quiet()).unwrap();
    assert_eq!(report.failed(), 1);

    let dump = dir.join("flight-slowjob-timeout.jsonl");
    let text = std::fs::read_to_string(&dump).expect("timeout flight dump written");
    let header = Value::parse(text.lines().next().unwrap()).unwrap();
    assert_eq!(
        header.get("reason").and_then(Value::as_str),
        Some("timeout")
    );

    let lines = telemetry_lines(&dir);
    let failed = events_named(&lines, "job_failed");
    assert_eq!(failed.len(), 1);
    assert_eq!(
        failed[0].get("error_kind").and_then(Value::as_str),
        Some("timeout")
    );
}

#[test]
fn heartbeats_carry_progress_and_warm_counters() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch("heartbeat");
    let _t = Traced::new(&dir);
    std::env::set_var("VSNOOP_HEARTBEAT_MS", "1");

    let job = Job::new("steady", 7, Value::obj(vec![]), |_ctx| {
        let cfg = SystemConfig::small_test();
        let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
        let mut wl = workload(&cfg, 11);
        for _ in 0..20 {
            sim.run(&mut wl, 50);
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok("ok\n".into())
    });
    let report = run_campaign(&[job], &RunnerConfig::default(), &mut quiet()).unwrap();
    std::env::remove_var("VSNOOP_HEARTBEAT_MS");
    assert!(report.all_ok());

    let lines = telemetry_lines(&dir);
    let beats = events_named(&lines, "heartbeat");
    assert!(!beats.is_empty(), "a 1 ms interval must fire during 100 ms");
    let beat = beats.last().unwrap();
    for key in [
        "jobs_total",
        "jobs_done",
        "jobs_running",
        "retries",
        "rounds_per_sec",
        "rss_bytes",
        "warm_hits",
        "warm_misses",
        "warm_evictions",
    ] {
        assert!(beat.get(key).is_some(), "heartbeat missing {key}");
    }
    let ok = events_named(&lines, "job_ok");
    assert_eq!(ok.len(), 1);
    assert!(ok[0].get("attempt_ms").and_then(Value::as_u64).is_some());
}

#[test]
fn shard_panic_emits_partial_progress_telemetry() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch("shard");
    let _t = Traced::new(&dir);

    vsnoop::runner::set_shard_workers(4);
    let r = std::panic::catch_unwind(|| {
        vsnoop::runner::scatter((0..12).collect::<Vec<u32>>(), |i| {
            if i == 2 {
                panic!("shard {i} failed");
            }
            std::thread::sleep(Duration::from_millis(2));
            i
        })
    });
    vsnoop::runner::set_shard_workers(0);
    assert!(r.is_err(), "the shard panic must propagate");

    let lines = telemetry_lines(&dir);
    let panics = events_named(&lines, "shard_panic");
    assert_eq!(panics.len(), 1);
    let p = panics[0];
    assert_eq!(p.get("index").and_then(Value::as_u64), Some(2));
    assert_eq!(p.get("shards").and_then(Value::as_u64), Some(12));
    assert_eq!(
        p.get("message").and_then(Value::as_str),
        Some("shard 2 failed")
    );
    assert!(
        p.get("completed_after").and_then(Value::as_u64).is_some()
            && p.get("dropped_unstarted").and_then(Value::as_u64).is_some(),
        "the record must account for the dropped partial progress"
    );
}

/// Satellite: every telemetry record carries a `mono_ms` field from
/// the process-monotonic clock next to the wall-clock `ts_ms` —
/// tailers correlate records across clock steps with it, so it must
/// be present and nondecreasing in emit order.
#[test]
fn telemetry_records_carry_nondecreasing_mono_ms() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = scratch("mono");
    let _t = Traced::new(&dir);

    vsnoop::obs::telemetry::emit("mono_probe", vec![("i", Value::UInt(0))]);
    std::thread::sleep(Duration::from_millis(5));
    vsnoop::obs::telemetry::emit("mono_probe", vec![("i", Value::UInt(1))]);

    let lines = telemetry_lines(&dir);
    let probes = events_named(&lines, "mono_probe");
    assert_eq!(probes.len(), 2);
    let mut prev = 0u64;
    for p in probes {
        assert!(
            p.get("ts_ms").and_then(Value::as_u64).is_some(),
            "the wall clock stays for log correlation: {p:?}"
        );
        let mono = p
            .get("mono_ms")
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("mono_ms in {p:?}"));
        assert!(mono >= prev, "mono_ms went backwards: {mono} < {prev}");
        prev = mono;
    }
}

/// Satellite: the engine-phase metrics gate is zero-cost when off. A
/// parallel-eligible batched run with the gate disabled (the default)
/// must not touch the engine-phase histograms at all; the same run
/// with the gate on records every phase. Held under [`OBS_LOCK`]
/// because the gate — like the trace flag — is process-global.
#[test]
fn engine_phase_metrics_record_only_when_the_gate_is_on() {
    use vsnoop::obs::metrics;

    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert!(!vsnoop::obs::enabled(), "tests start with tracing off");
    assert!(!metrics::enabled(), "tests start with the metrics gate off");

    let run = || {
        let cfg = SystemConfig::small_test();
        let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
        sim.set_engine_workers(2);
        let mut wl = workload(&cfg, 0x0B5E);
        sim.run(&mut wl, 400);
        assert!(sim.stats().l2_misses > 0, "the run must do real work");
    };
    let counts = || {
        (
            metrics::ENGINE_UPDATE_PROCS_US.snapshot().count,
            metrics::ENGINE_UPDATE_CACHES_US.snapshot().count,
            metrics::ENGINE_UPDATE_NET_US.snapshot().count,
            metrics::ENGINE_SHARD_IMBALANCE_US.snapshot().count,
        )
    };

    let before = counts();
    run();
    assert_eq!(counts(), before, "a disabled gate must record nothing");

    metrics::set_enabled(true);
    let before = counts();
    run();
    let after = counts();
    metrics::set_enabled(false);
    assert!(
        after.0 > before.0 && after.1 > before.1 && after.2 > before.2 && after.3 > before.3,
        "an enabled gate must record every phase: {before:?} -> {after:?}"
    );
}

/// Runs a simulator with epoch recording and checks that the sum of the
/// per-epoch deltas reproduces the final aggregate for **every**
/// counter field — the conservation property that catches a counter
/// the snapshotter forgot. Exercised both fault-free and under a
/// migration storm (so swaps, retries and map-maintenance counters are
/// all nonzero).
fn assert_epoch_deltas_conserve(every: u64, rounds: u64, seed: u64, migrate: bool) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use sim_vm::{VcpuId, VmId};

    let cfg = SystemConfig::small_test();
    let mut sim = Simulator::new(cfg, FilterPolicy::Counter, ContentPolicy::Broadcast);
    sim.enable_epochs(every);
    let mut wl = workload(&cfg, seed);
    if migrate {
        let mut rng = SmallRng::seed_from_u64(seed);
        let pick = move |_cycle: u64| {
            let a = rng.gen_range(0..cfg.n_vms) as u16;
            let mut b = rng.gen_range(0..cfg.n_vms - 1) as u16;
            if b >= a {
                b += 1;
            }
            (
                VcpuId::new(VmId::new(a), rng.gen_range(0..cfg.vcpus_per_vm)),
                VcpuId::new(VmId::new(b), rng.gen_range(0..cfg.vcpus_per_vm)),
            )
        };
        sim.run_with_migration(&mut wl, rounds, cfg.cycles_per_access * 3, pick);
    } else {
        sim.run(&mut wl, rounds);
    }
    sim.flush_epochs();

    let recorder = sim.epochs().expect("recorder enabled");
    let expected_epochs = rounds.div_ceil(every.max(1));
    assert_eq!(
        recorder.epochs().len() as u64,
        expected_epochs,
        "every={every} rounds={rounds}"
    );

    let mut summed = vsnoop::SimStats::new(cfg.n_cores());
    for epoch in recorder.epochs() {
        summed.add_delta(&epoch.stats);
    }
    let aggregate = sim.stats();
    assert_eq!(
        summed.counters(),
        aggregate.counters(),
        "per-epoch deltas must sum to the aggregate for every counter \
         (every={every}, rounds={rounds}, migrate={migrate})"
    );
    assert_eq!(
        summed.stall_cycles, aggregate.stall_cycles,
        "per-core stall deltas must sum too"
    );
}

#[test]
fn epoch_deltas_sum_to_final_aggregate() {
    // No lock: epoch recording is per-simulator and needs no tracing.
    assert_epoch_deltas_conserve(7, 97, 0xE90C, false);
    assert_epoch_deltas_conserve(16, 160, 0xE90C, true);
    assert_epoch_deltas_conserve(1, 13, 3, true);
}

#[cfg(feature = "proptest")]
mod prop {
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn epoch_delta_conservation_holds_for_any_shape(
            every in 1u64..40,
            rounds in 1u64..250,
            seed in any::<u64>(),
            migrate in any::<bool>(),
        ) {
            super::assert_epoch_deltas_conserve(every, rounds, seed, migrate);
        }
    }
}

//! Memory-access trace types.
//!
//! The simulator is trace-driven: workload generators produce a stream of
//! [`TraceAccess`]es, each naming the agent performing the access (guest
//! vCPU, dom0, or hypervisor), the host-physical byte address, and whether
//! it is a write. This mirrors how Virtual-GEMS feeds Simics execution
//! traces into the GEMS memory model (Section V-A).

use sim_vm::{Agent, VcpuId};

/// One memory access of a trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceAccess {
    /// Who performs the access. Host agents (dom0 / hypervisor) are
    /// attributed to the core of the vCPU whose slot they occupy — the
    /// paper's metrics only depend on their *share* of traffic, which must
    /// always be broadcast, not on their placement.
    pub agent: Agent,
    /// Host-physical byte address.
    pub addr: u64,
    /// `true` for a store, `false` for a load.
    pub write: bool,
}

/// A source of memory accesses, one per simulated core slot.
///
/// Implemented by the synthetic workload generators in this crate and by
/// scripted traces in tests.
pub trait AccessStream {
    /// Produces the next access for the core currently running `vcpu`.
    fn next_access(&mut self, vcpu: VcpuId) -> TraceAccess;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_vm::VmId;

    struct Fixed(u64);
    impl AccessStream for Fixed {
        fn next_access(&mut self, vcpu: VcpuId) -> TraceAccess {
            self.0 += 64;
            TraceAccess {
                agent: Agent::Guest(vcpu),
                addr: self.0,
                write: false,
            }
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut s: Box<dyn AccessStream> = Box::new(Fixed(0));
        let v = VcpuId::new(VmId::new(0), 0);
        let a = s.next_access(v);
        let b = s.next_access(v);
        assert_eq!(a.agent, Agent::Guest(v));
        assert_ne!(a.addr, b.addr);
    }
}

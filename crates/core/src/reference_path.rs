//! The frozen pre-optimization transaction path.
//!
//! These are the `Vec`-collecting implementations of the simulator's hot
//! path exactly as they stood before the allocation-free rewrite, re-homed
//! as free functions over [`Simulator`]. They run only when the reference
//! engine is selected ([`crate::testing::set_reference_engine`]) and exist
//! purely as the oracle half of the differential guard: the optimized path
//! must produce bit-identical statistics, traffic, and architectural state.
//!
//! **Do not optimize this module.** Its value is that it stays behind.

use super::*;

/// Pre-optimization outcome view: invalidated cores as a materialized list.
struct TxOutcome {
    success: bool,
    source: Option<DataSource>,
    invalidated: Vec<usize>,
    evicted: Option<CacheLine>,
    evicted_dirty: bool,
}

/// Verbatim pre-optimization `Simulator::transaction`.
pub(super) fn transaction(
    sim: &mut Simulator,
    core: CoreId,
    access: TraceAccess,
    block: BlockAddr,
    sharing: SharingType,
) {
    let c = core.index();
    let tag = LineTag::from(access.agent);
    let mode = sim.read_mode(access.agent, sharing);
    // For region tracking: whether the requester already held the
    // block (an upgrade does not change its region count).
    let requester_had = sim.l2[c].probe(block).is_some();

    let transient_attempts: u32 = if sim.faults.is_some() { 5 } else { 3 };
    for attempt in 0..=transient_attempts {
        let persistent = attempt == transient_attempts;
        let filtered = attempt < 2;
        let (dests, include_memory, degraded) = if persistent {
            let n = sim.cfg.n_cores();
            ((0..n).filter(|&d| d != c).collect(), true, false)
        } else {
            destinations(sim, c, access.agent, sharing, filtered, block)
        };
        if attempt > 0 {
            sim.stats.retries += 1;
            if attempt == 2 {
                sim.stats.broadcast_fallbacks += 1;
            }
        }
        if persistent {
            sim.stats.persistent_requests += 1;
        }
        if degraded && attempt == 0 {
            // The requester's map register failed validation; this
            // transaction runs as a full broadcast (degraded mode).
            sim.stats.degraded_broadcasts += 1;
        }

        // Request traffic: one control message per snooped cache, plus
        // one to the memory controller when memory participates. The
        // *worst* leg only matters for failed attempts (the requester
        // must conclude nobody will answer); successful transactions
        // are gated by the leg to the actual responder, computed below.
        // Under link faults a request may be dropped (traffic is still
        // accounted — the message was sent) or delayed; persistent
        // requests ride the reliable channel and cannot be dropped.
        let req_kind = if persistent {
            MessageKind::Persistent
        } else {
            MessageKind::Request
        };
        let src = NodeId::new(c as u16);
        let mut delivered: Vec<usize> = Vec::with_capacity(dests.len());
        let mut worst_req_lat = 0u64;
        for &d in &dests {
            let out = sim.net.send(src, NodeId::new(d as u16), req_kind);
            worst_req_lat = worst_req_lat.max(out.latency);
            if out.delivered {
                delivered.push(d);
            }
        }
        let mut memory_heard = include_memory;
        if include_memory {
            let out = sim.net.send_to_memory(src, req_kind);
            worst_req_lat = worst_req_lat.max(out.latency);
            memory_heard = out.delivered;
        }

        // The paper counts the requester's own tag lookup too (ideal
        // filtering on 16 cores -> 25% of baseline snoops). A dropped
        // request never reaches a tag array, so only delivered ones
        // count.
        sim.stats.snoops += delivered.len() as u64 + 1;

        let outcome = if access.write {
            let w = sim.protocol.reference_mut().write_miss(
                &mut sim.l2,
                c,
                &delivered,
                block,
                memory_heard,
                tag,
            );
            // Token-only replies.
            for &r in &w.token_repliers {
                sim.net
                    .unicast(NodeId::new(r as u16), src, MessageKind::TokenReply);
            }
            TxOutcome {
                success: w.success,
                source: w.source,
                invalidated: w.invalidated,
                evicted: w.evicted,
                evicted_dirty: w.evicted_dirty,
            }
        } else {
            let r = sim.protocol.reference_mut().read_miss(
                &mut sim.l2,
                c,
                &delivered,
                block,
                memory_heard,
                tag,
                mode,
            );
            TxOutcome {
                success: r.success,
                source: r.source,
                invalidated: r.invalidated,
                evicted: r.evicted,
                evicted_dirty: r.evicted_dirty,
            }
        };

        // Response traffic and latency. The transaction is gated by
        // the round trip to the responder (the data holder answers as
        // soon as *it* receives the request, regardless of how far the
        // other snooped caches are).
        let lm = *sim.net.latency_model();
        let round_trip = match outcome.source {
            Some(DataSource::Cache(h)) => {
                let resp = sim
                    .net
                    .unicast(NodeId::new(h as u16), src, MessageKind::Data);
                sim.count_data_source(h, access.agent.guest_vm());
                let req_leg = lm.base_latency(
                    sim.net.mesh().hops(src, NodeId::new(h as u16)),
                    MessageKind::Request.bytes(),
                );
                req_leg + resp
            }
            Some(DataSource::Memory) => {
                let resp = sim.net.from_memory(src, MessageKind::Data) + sim.cfg.memory_latency;
                sim.stats.data_memory += 1;
                let port = sim.net.mesh().nearest_port(src, sim.net.memory_ports());
                let req_leg =
                    lm.base_latency(sim.net.mesh().hops(src, port), MessageKind::Request.bytes());
                req_leg + resp
            }
            // Failed attempt (or a dataless upgrade): the requester
            // waits out the worst request leg plus a reply leg before
            // concluding/collecting.
            None => 2 * worst_req_lat,
        };

        // Charge the stall (contention-scaled) whether or not the
        // attempt succeeded: failed attempts cost real time.
        let base = sim.cfg.l2_latency + round_trip;
        let stall = sim.cfg.network.contended_latency(base, sim.utilization());
        sim.stats.stall_cycles[c] += stall;

        // Region tracking (RegionScout baseline): lines that left
        // remote caches or were displaced locally.
        if let Some(rf) = &mut sim.region_filter {
            let region = rf.region_of(block);
            if filtered && dests.is_empty() {
                rf.record_hit();
            }
            for &j in &outcome.invalidated {
                rf.on_remove(j, region);
            }
            if let Some(v) = &outcome.evicted {
                let vr = rf.region_of(v.block);
                rf.on_remove(c, vr);
            }
        }

        // Post-transaction bookkeeping.
        sim.apply_invalidations(&outcome.invalidated, block);
        if let Some(victim) = outcome.evicted {
            sim.handle_eviction(c, victim, outcome.evicted_dirty);
        }

        if outcome.success {
            if let Some(rf) = &mut sim.region_filter {
                let region = rf.region_of(block);
                if !requester_had {
                    // The fill also shoots down other cores' NSRT
                    // entries for the region (the broadcast doubles as
                    // the notification).
                    rf.on_fill(c, region);
                }
                // A broadcast that reached every other core and found
                // no holder of the region verifies it as not-shared
                // (a dropped request verifies nothing).
                if delivered.len() + 1 == sim.cfg.n_cores() && !rf.shared_elsewhere(c, region) {
                    rf.learn(c, region);
                }
            }
            sim.fill_l1(c, block, access.agent);
            return;
        } else if let Some(rf) = &mut sim.region_filter {
            // A failed memory-direct attempt means the NSRT entry was
            // stale; drop it so the broadcast retry re-verifies.
            if dests.is_empty() {
                rf.forget(c, rf.region_of(block));
            }
        }

        assert!(
            !persistent,
            "persistent broadcast with memory cannot fail: it reaches \
             every token holder on the reliable channel"
        );
        // Exponential escalation: each failed broadcast rung backs off
        // twice as long before re-arbitrating (reachable only under
        // link faults — fault-free, the first broadcast succeeds).
        if attempt >= 2 {
            let backoff = worst_req_lat.saturating_mul(1u64 << (attempt - 2).min(8));
            sim.stats.stall_cycles[c] += backoff;
        }
    }
    unreachable!("the persistent attempt either succeeds or asserts");
}

/// Verbatim pre-optimization `Simulator::destinations`.
fn destinations(
    sim: &Simulator,
    requester: usize,
    agent: Agent,
    sharing: SharingType,
    filtered: bool,
    block: BlockAddr,
) -> (Vec<usize>, bool, bool) {
    let n = sim.cfg.n_cores();
    let broadcast = || (0..n).filter(|&d| d != requester).collect::<Vec<_>>();
    if !filtered || !sim.policy.filters() {
        return (broadcast(), true, false);
    }
    if let Some(rf) = &sim.region_filter {
        // Region filtering is address-based, not VM-based: a miss to a
        // region this core verified as not-shared goes memory-direct;
        // everything else broadcasts (RegionScout has no multicast).
        let region = rf.region_of(block);
        return if rf.nsrt_contains(requester, region) {
            (Vec::new(), true, false)
        } else {
            (broadcast(), true, false)
        };
    }
    let Some(vm) = agent.guest_vm() else {
        // Hypervisor and dom0 requests must always be broadcast.
        return (broadcast(), true, false);
    };
    // Validate the register(s) the filter is about to trust; a failed
    // check falls back to full broadcast (correct by construction —
    // broadcast is what an unfiltered protocol would do) and is
    // counted as a degraded-mode transaction.
    let usable = |ok: bool, dests: Vec<usize>| {
        if ok {
            (dests, true, false)
        } else {
            (broadcast(), true, true)
        }
    };
    match sharing {
        SharingType::RwShared => (broadcast(), true, false),
        SharingType::VmPrivate => usable(
            sim.map_usable(vm, None, requester),
            map_dests(sim, vm, None, requester),
        ),
        SharingType::RoShared => match sim.content_policy {
            ContentPolicy::Broadcast => (broadcast(), true, false),
            ContentPolicy::MemoryDirect => (Vec::new(), true, false),
            ContentPolicy::IntraVm => usable(
                sim.map_usable(vm, None, requester),
                map_dests(sim, vm, None, requester),
            ),
            ContentPolicy::FriendVm => {
                let friend = sim.friends[vm.index()];
                usable(
                    sim.map_usable(vm, friend, requester),
                    map_dests(sim, vm, friend, requester),
                )
            }
        },
    }
}

/// Verbatim pre-optimization `Simulator::map_dests`.
fn map_dests(sim: &Simulator, vm: VmId, friend: Option<VmId>, requester: usize) -> Vec<usize> {
    let mut map = sim.maps.map(vm.index());
    if let Some(f) = friend {
        map = map.union(sim.maps.map(f.index()));
    }
    map.cores()
        .map(|c| c.index())
        .filter(|&d| d != requester && d < sim.cfg.n_cores())
        .collect()
}

/// Verbatim pre-optimization `Simulator::account_map_sync`.
pub(super) fn account_map_sync(sim: &mut Simulator, vm: VmId) {
    // Mask to physical cores: a corrupted register can hold bits
    // beyond the mesh, but the hypervisor's update broadcast only ever
    // targets real cores.
    let map =
        VcpuMap::from_mask(sim.maps.map(vm.index()).mask() & valid_core_mask(sim.cfg.n_cores()));
    let Some(first) = map.cores().next() else {
        return;
    };
    let src = NodeId::new(first.index() as u16);
    let dests: Vec<NodeId> = map
        .cores()
        .skip(1)
        .map(|c| NodeId::new(c.index() as u16))
        .collect();
    sim.net.multicast(src, dests, MessageKind::MapUpdate);
}

/// Verbatim pre-optimization `Simulator::classify_holders`.
pub(super) fn classify_holders(sim: &mut Simulator, block: BlockAddr, vm: Option<VmId>) {
    let holders: Vec<usize> = (0..sim.cfg.n_cores())
        .filter(|&j| sim.l2[j].probe(block).is_some())
        .collect();
    if holders.is_empty() {
        sim.stats.holders_memory += 1;
        return;
    }
    sim.stats.holders_any_cache += 1;
    let Some(vm) = vm else { return };
    let own = sim.maps.map(vm.index());
    if holders.iter().any(|&j| own.contains(CoreId::new(j as u16))) {
        sim.stats.holders_intra_vm += 1;
    } else if let Some(f) = sim.friends[vm.index()] {
        let fm = sim.maps.map(f.index());
        if holders.iter().any(|&j| fm.contains(CoreId::new(j as u16))) {
            sim.stats.holders_friend_vm += 1;
        }
    }
}

//! Fig. 6 — execution times of virtual snooping with ideally pinned VMs.

use vsnoop::experiments::table4_fig6;
use vsnoop_bench::{f1, heading, scale_from_env, TextTable};

fn main() {
    heading(
        "Figure 6: execution time normalized to TokenB (pinned VMs)",
        "Paper: virtual snooping improves runtime by 0.2-9.1% (avg 3.8%) —\n\
         modest, because network bandwidth is not saturated; the main win\n\
         is snoop power/bandwidth.",
    );
    let rows = table4_fig6(scale_from_env());
    let mut t = TextTable::new(["workload", "vsnoop runtime %", "improvement %"]);
    let mut sum = 0.0;
    for r in &rows {
        sum += 100.0 - r.norm_runtime_pct;
        t.row([
            r.name.to_string(),
            f1(r.norm_runtime_pct),
            f1(100.0 - r.norm_runtime_pct),
        ]);
    }
    t.row([
        "Average".to_string(),
        String::new(),
        f1(sum / rows.len() as f64),
    ]);
    t.maybe_dump_csv("fig6").expect("csv dump");
    println!("{t}");
}

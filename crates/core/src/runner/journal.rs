//! The JSON-lines checkpoint journal.
//!
//! Every *terminal* job result (success, or failure after the retry
//! budget) is appended to `journal.jsonl` and flushed immediately, so a
//! killed campaign loses at most the jobs that were still in flight.
//! `--resume` reads the journal back and re-runs only jobs without a
//! terminal entry. Entries carry no wall-clock quantities — everything
//! in them is a deterministic function of the job and its configuration
//! — so the *merged* journal of an interrupted-and-resumed campaign is
//! byte-identical to that of an uninterrupted one.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use super::job::{JobError, JobRecord};
use super::json::Value;

/// One journal line: the terminal outcome of one job.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// Position in the campaign's job list.
    pub index: usize,
    /// Job name (the resume key, together with `seed`).
    pub job: String,
    /// The job's seed.
    pub seed: u64,
    /// Attempts consumed.
    pub attempts: u32,
    /// `Ok(output)` or the final error.
    pub outcome: Result<String, JobError>,
    /// Wall-clock time from first dispatch to the terminal outcome, in
    /// milliseconds. `None` in journals written before this field
    /// existed (old journals stay parseable) and in the merged journal,
    /// which strips wall-clock quantities to stay deterministic.
    pub wall_ms: Option<u64>,
    /// Duration of the final attempt alone, in milliseconds; `None`
    /// under the same conditions as `wall_ms`.
    pub attempt_ms: Option<u64>,
}

impl JournalEntry {
    /// Builds the entry for a finished job record.
    pub fn from_record(r: &JobRecord) -> Self {
        JournalEntry {
            index: r.index,
            job: r.spec.name.clone(),
            seed: r.spec.seed,
            attempts: r.attempts,
            outcome: r.outcome.clone(),
            wall_ms: r.wall_ms,
            attempt_ms: r.attempt_ms,
        }
    }

    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut pairs = vec![
            ("index", Value::UInt(self.index as u64)),
            ("job", Value::Str(self.job.clone())),
            ("seed", Value::UInt(self.seed)),
            ("attempts", Value::UInt(u64::from(self.attempts))),
        ];
        match &self.outcome {
            Ok(output) => {
                pairs.push(("status", Value::Str("ok".into())));
                pairs.push(("output", Value::Str(output.clone())));
            }
            Err(e) => {
                pairs.push(("status", Value::Str("failed".into())));
                pairs.push(("error_kind", Value::Str(e.kind().into())));
                pairs.push(("error", Value::Str(e.to_string())));
                if let JobError::TimedOut { limit_ms } = e {
                    pairs.push(("limit_ms", Value::UInt(*limit_ms)));
                }
            }
        }
        // Wall-clock fields go last so the deterministic prefix of the
        // line is unchanged from journals that predate them.
        if let Some(ms) = self.wall_ms {
            pairs.push(("wall_ms", Value::UInt(ms)));
        }
        if let Some(ms) = self.attempt_ms {
            pairs.push(("attempt_ms", Value::UInt(ms)));
        }
        Value::obj(pairs).to_json()
    }

    /// Parses one journal line.
    pub fn from_json_line(line: &str) -> Option<JournalEntry> {
        let v = Value::parse(line).ok()?;
        let index = v.get("index")?.as_u64()? as usize;
        let job = v.get("job")?.as_str()?.to_string();
        let seed = v.get("seed")?.as_u64()?;
        let attempts = v.get("attempts")?.as_u64()? as u32;
        let status = v.get("status")?.as_str()?;
        let outcome = match status {
            "ok" => Ok(v.get("output")?.as_str()?.to_string()),
            "failed" => {
                let message = v.get("error")?.as_str()?.to_string();
                Err(match v.get("error_kind")?.as_str()? {
                    "timeout" => JobError::TimedOut {
                        limit_ms: v.get("limit_ms")?.as_u64()?,
                    },
                    "panic" => JobError::Panicked {
                        message: message
                            .strip_prefix("panicked: ")
                            .unwrap_or(&message)
                            .to_string(),
                    },
                    "cancelled" => JobError::Cancelled {
                        reason: message
                            .strip_prefix("cancelled: ")
                            .unwrap_or(&message)
                            .to_string(),
                    },
                    _ => JobError::Failed {
                        message: message
                            .strip_prefix("failed: ")
                            .unwrap_or(&message)
                            .to_string(),
                    },
                })
            }
            _ => return None,
        };
        Some(JournalEntry {
            index,
            job,
            seed,
            attempts,
            outcome,
            // Optional in both directions: absent in old journals, and
            // absence round-trips as `None`.
            wall_ms: v.get("wall_ms").and_then(Value::as_u64),
            attempt_ms: v.get("attempt_ms").and_then(Value::as_u64),
        })
    }
}

/// An append-only JSONL journal on disk.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    writer: BufWriter<File>,
    /// `fdatasync` each appended entry (the durable-service path);
    /// batch campaign runs keep the cheap flush-only default.
    sync: bool,
}

impl Journal {
    /// Opens the journal for appending, creating it (and its parent
    /// directories) as needed. With `fresh`, any existing journal is
    /// truncated first — a non-resume campaign must not inherit stale
    /// checkpoints.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: &Path, fresh: bool) -> std::io::Result<Journal> {
        Self::open_with_sync(path, fresh, false)
    }

    /// Like [`Journal::open`], but with `sync` every append also
    /// `fdatasync`s, so a terminal outcome survives power loss — not
    /// just process death. The service journal opens with `sync`;
    /// campaign runs stay flush-only (a lost checkpoint there only
    /// re-runs one job, which is not worth an fsync per entry).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open_with_sync(path: &Path, fresh: bool, sync: bool) -> std::io::Result<Journal> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        if !fresh {
            Self::repair_tail(path)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(!fresh)
            .write(true)
            .truncate(fresh)
            .open(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
            sync,
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Truncates a torn trailing line — a crash mid-append leaves the
    /// file without a final newline — so the next append starts on a
    /// fresh line instead of gluing onto the torn bytes and corrupting
    /// itself too. A missing file needs no repair.
    fn repair_tail(path: &Path) -> std::io::Result<()> {
        let mut f = match OpenOptions::new().read(true).write(true).open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        if bytes.last().is_some_and(|&b| b != b'\n') {
            let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
            f.set_len(keep as u64)?;
        }
        Ok(())
    }

    /// Appends one entry and flushes it to the OS, so a SIGKILL
    /// immediately afterwards cannot lose it. When the journal was
    /// opened with sync (see [`Journal::open_with_sync`]), the entry
    /// is also `fdatasync`ed to stable storage before returning.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, entry: &JournalEntry) -> std::io::Result<()> {
        self.writer.write_all(entry.to_json_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        if self.sync {
            self.writer.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Loads all parseable entries from a journal file. A half-written
    /// final line (the process died mid-append) is skipped rather than
    /// failing the whole resume; a missing file is an empty journal.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than `NotFound`.
    pub fn load(path: &Path) -> std::io::Result<Vec<JournalEntry>> {
        Ok(Self::load_with_warnings(path)?.0)
    }

    /// Like [`Journal::load`], but also reports every skipped line as a
    /// human-readable warning, so a resume after a crash mid-append can
    /// tell the user which checkpoint was lost (that job simply
    /// re-runs) instead of dropping it silently. The file is read as
    /// raw bytes: a write cut short inside a multi-byte character must
    /// not fail the whole resume either.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than `NotFound`.
    pub fn load_with_warnings(path: &Path) -> std::io::Result<(Vec<JournalEntry>, Vec<String>)> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Vec::new(), Vec::new()))
            }
            Err(e) => return Err(e),
        }
        let mut entries = Vec::new();
        let mut warnings = Vec::new();
        for (lineno, raw) in bytes.split(|&b| b == b'\n').enumerate() {
            let line = String::from_utf8_lossy(raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match JournalEntry::from_json_line(line) {
                Some(e) => entries.push(e),
                None => warnings.push(format!(
                    "journal {}: line {} is unparseable (crash mid-write?); \
                     skipping it — the affected job will re-run",
                    path.display(),
                    lineno + 1,
                )),
            }
        }
        Ok((entries, warnings))
    }

    /// Writes the canonical merged journal: one line per job, sorted by
    /// campaign index. Because entries are deterministic, this file is
    /// byte-identical whether the campaign ran straight through or was
    /// killed and resumed any number of times — the wall-clock fields
    /// (`wall_ms`, `attempt_ms`) are stripped here for exactly that
    /// reason; they survive only in the raw append journal.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_merged(path: &Path, entries: &[JournalEntry]) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut sorted: Vec<&JournalEntry> = entries.iter().collect();
        sorted.sort_by_key(|e| e.index);
        let mut out = String::new();
        for e in sorted {
            let stripped = JournalEntry {
                wall_ms: None,
                attempt_ms: None,
                ..(*e).clone()
            };
            out.push_str(&stripped.to_json_line());
            out.push('\n');
        }
        std::fs::write(path, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(index: usize, name: &str, outcome: Result<String, JobError>) -> JournalEntry {
        JournalEntry {
            index,
            job: name.into(),
            seed: 0xC0FFEE,
            attempts: if outcome.is_ok() { 1 } else { 3 },
            outcome,
            wall_ms: None,
            attempt_ms: None,
        }
    }

    #[test]
    fn wall_clock_fields_round_trip_and_merge_strips_them() {
        let mut timed = entry(0, "fig1", Ok("out".into()));
        timed.wall_ms = Some(1234);
        timed.attempt_ms = Some(456);
        let line = timed.to_json_line();
        assert!(line.contains("\"wall_ms\":1234"));
        assert!(line.ends_with("\"attempt_ms\":456}"));
        assert_eq!(JournalEntry::from_json_line(&line).unwrap(), timed);

        // Old journals (no wall-clock fields) parse with `None`.
        let old = entry(1, "fig3", Ok("x".into()));
        let parsed = JournalEntry::from_json_line(&old.to_json_line()).unwrap();
        assert_eq!(parsed.wall_ms, None);
        assert_eq!(parsed.attempt_ms, None);

        // The merged journal is byte-identical with and without them.
        let dir = std::env::temp_dir().join(format!("vsnoop-journal-wall-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let with_times = dir.join("with.jsonl");
        let without_times = dir.join("without.jsonl");
        let mut untimed = timed.clone();
        untimed.wall_ms = None;
        untimed.attempt_ms = None;
        Journal::write_merged(&with_times, &[timed]).unwrap();
        Journal::write_merged(&without_times, &[untimed]).unwrap();
        assert_eq!(
            std::fs::read(&with_times).unwrap(),
            std::fs::read(&without_times).unwrap(),
            "write_merged must strip wall-clock fields"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_round_trip() {
        for e in [
            entry(0, "fig1", Ok("\n=== Figure 1 ===\ntable\n".into())),
            entry(
                3,
                "fig7",
                Err(JobError::Panicked {
                    message: "index out of bounds".into(),
                }),
            ),
            entry(5, "fig8", Err(JobError::TimedOut { limit_ms: 60_000 })),
            entry(
                7,
                "soak",
                Err(JobError::Failed {
                    message: "2 invariant violations".into(),
                }),
            ),
        ] {
            let line = e.to_json_line();
            assert!(!line.contains('\n'), "one line per entry: {line}");
            let back = JournalEntry::from_json_line(&line).expect("parses");
            assert_eq!(back, e);
        }
    }

    #[test]
    fn append_load_and_merge() {
        let dir = std::env::temp_dir().join(format!("vsnoop-journal-{}", std::process::id()));
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut j = Journal::open(&path, true).unwrap();
            j.append(&entry(1, "b", Ok("B".into()))).unwrap();
            j.append(&entry(0, "a", Ok("A".into()))).unwrap();
        }
        // Simulate a crash mid-append: a truncated trailing line.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"index\":2,\"job\":\"c\",\"se").unwrap();
        }
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded.len(), 2, "truncated line skipped");
        assert_eq!(loaded[0].job, "b");

        let merged = dir.join("merged.jsonl");
        Journal::write_merged(&merged, &loaded).unwrap();
        let text = std::fs::read_to_string(&merged).unwrap();
        let names: Vec<String> = text
            .lines()
            .map(|l| JournalEntry::from_json_line(l).unwrap().job)
            .collect();
        assert_eq!(names, ["a", "b"], "merged journal is index-sorted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_entries_round_trip() {
        let e = entry(
            2,
            "fig7",
            Err(JobError::Cancelled {
                reason: "drain".into(),
            }),
        );
        let line = e.to_json_line();
        assert!(line.contains("\"status\":\"failed\""));
        assert!(line.contains("\"error_kind\":\"cancelled\""));
        assert_eq!(JournalEntry::from_json_line(&line).unwrap(), e);
    }

    #[test]
    fn truncated_lines_are_skipped_with_warnings() {
        let dir = std::env::temp_dir().join(format!("vsnoop-journal-trunc-{}", std::process::id()));
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut j = Journal::open(&path, true).unwrap();
            j.append(&entry(0, "a", Ok("A".into()))).unwrap();
        }
        // A crash mid-write can stop inside a multi-byte character; the
        // loader must tolerate the invalid UTF-8 tail, not just missing
        // braces.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"index\":1,\"job\":\"caf\xc3").unwrap();
        }
        let (entries, warnings) = Journal::load_with_warnings(&path).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].job, "a");
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("line 2"), "{warnings:?}");
        assert!(warnings[0].contains("re-run"), "{warnings:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_for_append_repairs_a_torn_tail() {
        let dir =
            std::env::temp_dir().join(format!("vsnoop-journal-repair-{}", std::process::id()));
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut j = Journal::open(&path, true).unwrap();
            j.append(&entry(0, "a", Ok("A".into()))).unwrap();
        }
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"index\":1,\"job\":\"to").unwrap();
        }
        // Reopening for append (the resume path) truncates the torn
        // line; the next entry must not be glued onto its bytes.
        {
            let mut j = Journal::open(&path, false).unwrap();
            j.append(&entry(1, "b", Ok("B".into()))).unwrap();
        }
        let (entries, warnings) = Journal::load_with_warnings(&path).unwrap();
        assert_eq!(warnings, Vec::<String>::new());
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].job, "b");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_empty() {
        let loaded = Journal::load(Path::new("/nonexistent/definitely/missing.jsonl")).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn fresh_open_truncates() {
        let dir = std::env::temp_dir().join(format!("vsnoop-journal-fresh-{}", std::process::id()));
        let path = dir.join("journal.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut j = Journal::open(&path, true).unwrap();
            j.append(&entry(0, "a", Ok("A".into()))).unwrap();
        }
        {
            let _j = Journal::open(&path, true).unwrap();
        }
        assert!(Journal::load(&path).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

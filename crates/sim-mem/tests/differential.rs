//! Differential guard: the optimized mask-based protocol engine must
//! behave bit-identically to the frozen pre-optimization reference.
//!
//! A long, seeded, pseudo-random transaction storm is applied to both
//! engines in lockstep. After *every* transaction the outcomes, both
//! cache arrays, and the memory-side token ledgers must agree exactly —
//! so a divergence is caught at the first transaction that exhibits it,
//! not at the end of the run.

use sim_mem::{
    BlockAddr, Cache, CacheGeometry, LineTag, ReadMode, ReferenceProtocol, TokenLedger,
    TokenProtocol,
};
use sim_vm::VmId;

/// The xorshift* generator the workloads crate vendors; reproduced here
/// so this test is self-contained and deterministic.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn line_key(c: &Cache) -> Vec<(BlockAddr, u32, bool, bool, LineTag)> {
    let mut v: Vec<_> = c
        .lines()
        .map(|l| (l.block, l.state.tokens, l.state.owner, l.state.dirty, l.tag))
        .collect();
    v.sort_unstable_by_key(|&(b, ..)| b);
    v
}

fn assert_same_state(
    step: usize,
    fast: &TokenProtocol,
    reference: &ReferenceProtocol,
    fast_caches: &[Cache],
    ref_caches: &[Cache],
) {
    assert_eq!(
        fast.memory_entries_sorted(),
        reference.memory_entries_sorted(),
        "ledgers diverged at step {step}"
    );
    for (i, (f, r)) in fast_caches.iter().zip(ref_caches).enumerate() {
        assert_eq!(
            line_key(f),
            line_key(r),
            "cache {i} diverged at step {step}"
        );
        assert_eq!(f.stats(), r.stats(), "cache {i} stats at step {step}");
    }
}

#[test]
fn optimized_engine_matches_reference_over_random_storm() {
    const CORES: usize = 16;
    const STEPS: usize = 40_000;
    let geo = CacheGeometry::new(16 * 1024, 4); // small: plenty of evictions
    let mut fast_caches = vec![Cache::new(geo, 4); CORES];
    let mut ref_caches = vec![Cache::new(geo, 4); CORES];
    let mut fast = TokenProtocol::new(CORES as u32);
    let mut reference = ReferenceProtocol::new(CORES as u32);
    let mut rng = Rng::new(0xD1FF_50AC);

    for step in 0..STEPS {
        let requester = rng.below(CORES as u64) as usize;
        let block = BlockAddr::new(rng.below(2048));
        let tag = LineTag::Vm(VmId::new((requester / 4) as u16));
        let include_memory = rng.below(8) != 0;
        // Random destination subset (ascending order, like the simulator
        // always produces), occasionally empty, occasionally broadcast.
        let subset = match rng.below(4) {
            0 => u64::MAX,
            _ => rng.next(),
        };
        let dests: Vec<usize> = (0..CORES)
            .filter(|&c| c != requester && subset & (1 << c) != 0)
            .collect();

        let is_write = rng.below(3) == 0;
        if is_write {
            let w_fast = fast.write_miss(
                &mut fast_caches,
                requester,
                &dests,
                block,
                include_memory,
                tag,
            );
            let w_ref = reference.write_miss(
                &mut ref_caches,
                requester,
                &dests,
                block,
                include_memory,
                tag,
            );
            assert_eq!(w_fast.success, w_ref.success, "write success at {step}");
            assert_eq!(w_fast.source, w_ref.source, "write source at {step}");
            assert_eq!(
                w_fast.token_repliers, w_ref.token_repliers,
                "token repliers at {step}"
            );
            assert_eq!(
                w_fast.invalidated, w_ref.invalidated,
                "write invalidations at {step}"
            );
            assert_eq!(w_fast.snooped, w_ref.snooped, "write snooped at {step}");
            assert_eq!(w_fast.bounced, w_ref.bounced, "write bounced at {step}");
            assert_eq!(
                w_fast.evicted.map(|l| l.block),
                w_ref.evicted.map(|l| l.block),
                "write eviction at {step}"
            );
            assert_eq!(w_fast.evicted_dirty, w_ref.evicted_dirty);
        } else {
            // Skip reads on blocks the requester caches (API precondition).
            if fast_caches[requester].probe(block).is_some() {
                assert!(ref_caches[requester].probe(block).is_some());
                continue;
            }
            let mode = if rng.below(4) == 0 {
                ReadMode::CleanShared
            } else {
                ReadMode::Strict
            };
            let r_fast = fast.read_miss(
                &mut fast_caches,
                requester,
                &dests,
                block,
                include_memory,
                tag,
                mode,
            );
            let r_ref = reference.read_miss(
                &mut ref_caches,
                requester,
                &dests,
                block,
                include_memory,
                tag,
                mode,
            );
            assert_eq!(r_fast.success, r_ref.success, "read success at {step}");
            assert_eq!(r_fast.source, r_ref.source, "read source at {step}");
            assert_eq!(
                r_fast.invalidated, r_ref.invalidated,
                "read invalidations at {step}"
            );
            assert_eq!(r_fast.snooped, r_ref.snooped, "read snooped at {step}");
            assert_eq!(
                r_fast.evicted.map(|l| l.block),
                r_ref.evicted.map(|l| l.block),
                "read eviction at {step}"
            );
            assert_eq!(r_fast.evicted_dirty, r_ref.evicted_dirty);
        }

        assert!(fast.check_invariant(&fast_caches, block), "fast invariant");
        assert!(
            reference.check_invariant(&ref_caches, block),
            "reference invariant"
        );
        // Outcomes are compared every transaction; the (expensive) full
        // state dump every few transactions still localizes a divergence
        // to within a handful of steps.
        if step % 13 == 0 || step + 1 == STEPS {
            assert_same_state(step, &fast, &reference, &fast_caches, &ref_caches);
        }
    }
    // The storm must have left non-trivial state behind for the
    // comparison to mean anything.
    assert!(!fast.memory_entries_sorted().is_empty());
}

#[test]
fn masked_and_slice_apis_agree() {
    const CORES: usize = 8;
    let geo = CacheGeometry::new(8 * 1024, 4);
    let mut a_caches = vec![Cache::new(geo, 4); CORES];
    let mut b_caches = vec![Cache::new(geo, 4); CORES];
    let mut a = TokenProtocol::new(CORES as u32);
    let mut b = TokenProtocol::new(CORES as u32);
    let mut rng = Rng::new(0xBEEF);

    for step in 0..5_000 {
        let requester = rng.below(CORES as u64) as usize;
        let block = BlockAddr::new(rng.below(512));
        let tag = LineTag::Vm(VmId::new(0));
        let subset = rng.next() & !(1u64 << requester) & ((1 << CORES) - 1);
        let dests: Vec<usize> = (0..CORES).filter(|&c| subset & (1 << c) != 0).collect();
        if rng.below(2) == 0 {
            let w1 = a.write_miss(&mut a_caches, requester, &dests, block, true, tag);
            let w2 =
                b.write_miss_masked(b_caches.as_mut_slice(), requester, subset, block, true, tag);
            assert_eq!(w1.success, w2.success, "step {step}");
            assert_eq!(
                w1.invalidated,
                sim_mem::mask_cores(w2.invalidated).collect::<Vec<_>>()
            );
            assert_eq!(
                w1.token_repliers,
                sim_mem::mask_cores(w2.token_repliers).collect::<Vec<_>>()
            );
        } else {
            if a_caches[requester].probe(block).is_some() {
                continue;
            }
            let r1 = a.read_miss(
                &mut a_caches,
                requester,
                &dests,
                block,
                true,
                tag,
                ReadMode::Strict,
            );
            let r2 = b.read_miss_masked(
                b_caches.as_mut_slice(),
                requester,
                subset,
                block,
                true,
                tag,
                ReadMode::Strict,
            );
            assert_eq!(r1.success, r2.success, "step {step}");
            assert_eq!(r1.source, r2.source, "step {step}");
            assert_eq!(
                r1.invalidated,
                sim_mem::mask_cores(r2.invalidated).collect::<Vec<_>>()
            );
        }
        assert_eq!(a.memory_entries_sorted(), b.memory_entries_sorted());
    }
}

//! System-level differential guard: the optimized allocation-free
//! transaction path must be *bit-identical* to the frozen pre-optimization
//! reference path across full simulations.
//!
//! Each scenario is run twice — once per engine (selected via the
//! process-wide `vsnoop::testing::set_reference_engine` toggle) — with
//! freshly constructed but identically seeded workloads, and every
//! observable is compared: [`SimStats`], the architectural-state digest,
//! network traffic, the removal log, fault-injection counters, checker
//! counters, and the final cycle count.
//!
//! Everything lives in ONE `#[test]` because the engine toggle is
//! process-global: concurrent tests constructing simulators would race on
//! it.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim_vm::{VcpuId, VmId};
use vsnoop::{CheckerConfig, ContentPolicy, FaultPlan, FilterPolicy, Simulator, SystemConfig};
use workloads::{profile, Workload, WorkloadConfig};

struct Scenario {
    name: &'static str,
    cfg: SystemConfig,
    policy: FilterPolicy,
    content: ContentPolicy,
    profile: &'static str,
    host_activity: bool,
    fault_seed: Option<u64>,
    checker: bool,
    /// `Some(period_cycles)` runs the migration storm; `None` runs plain.
    migration: Option<u64>,
    rounds: u64,
}

fn scenarios() -> Vec<Scenario> {
    let paper = SystemConfig::paper_default();
    let small = SystemConfig::small_test();
    let storm_period = (paper.cycles_per_ms / 10).max(1);
    vec![
        // The acceptance profile: the soak storm (paper machine, counter
        // policy, every fault class, checker on, 0.1 ms migration storm).
        Scenario {
            name: "soak_storm",
            cfg: paper,
            policy: FilterPolicy::Counter,
            content: ContentPolicy::Broadcast,
            profile: "ocean",
            host_activity: false,
            fault_seed: Some(0x50AC),
            checker: true,
            migration: Some(storm_period),
            rounds: 700,
        },
        Scenario {
            name: "broadcast_baseline",
            cfg: small,
            policy: FilterPolicy::TokenBroadcast,
            content: ContentPolicy::Broadcast,
            profile: "cholesky",
            host_activity: false,
            fault_seed: None,
            checker: false,
            migration: None,
            rounds: 1_500,
        },
        Scenario {
            name: "vsnoop_base_host",
            cfg: small,
            policy: FilterPolicy::VsnoopBase,
            content: ContentPolicy::Broadcast,
            profile: "SPECweb",
            host_activity: true,
            fault_seed: None,
            checker: false,
            migration: None,
            rounds: 1_500,
        },
        Scenario {
            name: "counter_intra_vm",
            cfg: small,
            policy: FilterPolicy::Counter,
            content: ContentPolicy::IntraVm,
            profile: "specjbb",
            host_activity: false,
            fault_seed: None,
            checker: true,
            migration: Some(200),
            rounds: 1_200,
        },
        Scenario {
            name: "threshold_friend_vm",
            cfg: small,
            policy: FilterPolicy::CounterThreshold { threshold: 2 },
            content: ContentPolicy::FriendVm,
            profile: "SPECweb",
            host_activity: false,
            fault_seed: None,
            checker: false,
            migration: Some(300),
            rounds: 1_200,
        },
        Scenario {
            name: "memory_direct",
            cfg: small,
            policy: FilterPolicy::VsnoopBase,
            content: ContentPolicy::MemoryDirect,
            profile: "SPECweb",
            host_activity: false,
            fault_seed: None,
            checker: false,
            migration: None,
            rounds: 1_200,
        },
        Scenario {
            name: "region_scout",
            cfg: small,
            policy: FilterPolicy::RegionScout {
                region_blocks: 64,
                nsrt_entries: 32,
            },
            content: ContentPolicy::Broadcast,
            profile: "cholesky",
            host_activity: false,
            fault_seed: None,
            checker: false,
            migration: None,
            rounds: 1_500,
        },
        // Faults without checker: link drops/delays reach the retry
        // ladder, corruption reaches the degraded-broadcast fallback.
        Scenario {
            name: "faulty_vsnoop",
            cfg: small,
            policy: FilterPolicy::VsnoopBase,
            content: ContentPolicy::IntraVm,
            profile: "ocean",
            host_activity: false,
            fault_seed: Some(0x0D15_EA5E),
            checker: false,
            migration: Some(150),
            rounds: 1_200,
        },
    ]
}

/// The perf harness's migration picker, duplicated so the storm scenario
/// shuffles the same pairs.
fn picker(cfg: SystemConfig, seed: u64) -> impl FnMut(u64) -> (VcpuId, VcpuId) {
    let mut rng = SmallRng::seed_from_u64(seed);
    move |_| {
        let a = rng.gen_range(0..cfg.n_vms) as u16;
        let mut b = rng.gen_range(0..cfg.n_vms - 1) as u16;
        if b >= a {
            b += 1;
        }
        (
            VcpuId::new(VmId::new(a), rng.gen_range(0..cfg.vcpus_per_vm)),
            VcpuId::new(VmId::new(b), rng.gen_range(0..cfg.vcpus_per_vm)),
        )
    }
}

/// Everything observable about a finished run, comparable with `==`.
#[derive(PartialEq, Debug)]
struct RunDigest {
    stats: vsnoop::SimStats,
    arch_state: String,
    traffic: sim_net::TrafficStats,
    removal_log: Vec<vsnoop::RemovalEvent>,
    diagnostics_total: u64,
    cycle: u64,
    injections: String,
    checker: String,
}

fn run_one(sc: &Scenario, reference: bool) -> RunDigest {
    vsnoop::testing::set_reference_engine(reference);
    let mut sim = Simulator::new(sc.cfg, sc.policy, sc.content);
    vsnoop::testing::set_reference_engine(false);
    assert_eq!(
        sim.debug_is_reference_engine(),
        reference,
        "engine toggle must select the engine under comparison"
    );
    if let Some(seed) = sc.fault_seed {
        sim.set_fault_plan(FaultPlan::all(seed));
    }
    if sc.checker {
        sim.enable_checker(CheckerConfig::default());
    }
    let mut wl = Workload::homogeneous(
        profile(sc.profile).unwrap(),
        sc.cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: sc.cfg.vcpus_per_vm,
            host_activity: sc.host_activity,
            seed: 0xABCD ^ sc.rounds,
            ..Default::default()
        },
    );
    match sc.migration {
        Some(period) => sim.run_with_migration(&mut wl, sc.rounds, period, picker(sc.cfg, 0x51A9)),
        None => sim.run(&mut wl, sc.rounds),
    }
    sim.run_checker_sweep();
    RunDigest {
        stats: sim.stats().clone(),
        arch_state: sim.arch_state(),
        traffic: *sim.traffic(),
        removal_log: sim.removal_log().to_vec(),
        diagnostics_total: sim.diagnostics_total(),
        cycle: sim.cycle(),
        injections: format!("{:?}", sim.fault_injections()),
        checker: format!(
            "{:?}",
            sim.checker().map(|c| {
                (
                    c.violations().len(),
                    c.total_violations(),
                    c.block_checks(),
                    c.sweeps(),
                    c.map_checks(),
                    c.touched_blocks(),
                )
            })
        ),
    }
}

/// One test on purpose: the engine toggle is process-wide, so scenarios
/// run strictly sequentially with the flag restored between builds.
#[test]
fn optimized_engine_is_bit_identical_to_reference() {
    for sc in scenarios() {
        let fast = run_one(&sc, false);
        let reference = run_one(&sc, true);
        assert_eq!(
            fast.stats, reference.stats,
            "SimStats diverged in scenario {}",
            sc.name
        );
        assert_eq!(
            fast.traffic, reference.traffic,
            "traffic diverged in scenario {}",
            sc.name
        );
        assert!(
            fast.arch_state == reference.arch_state,
            "architectural state diverged in scenario {}",
            sc.name
        );
        assert_eq!(fast, reference, "digest diverged in scenario {}", sc.name);
        // A scenario that never exercised the machine would vacuously
        // pass; require real coherence activity.
        assert!(
            fast.stats.l2_misses > 0 && !fast.arch_state.is_empty(),
            "scenario {} did no work",
            sc.name
        );
    }
}

//! The always-on simulation server: accept loop, per-connection
//! handlers, and the scheduler that drives admission, deadlines, and
//! graceful drain.
//!
//! Threading model (all plain `std::thread` + `std::net`, no external
//! runtime):
//!
//! - **accept loop** (one thread): nonblocking accept polled every
//!   ~50ms so it can also notice shutdown (the in-process
//!   [`Server::shutdown`] flag, the `shutdown` protocol op, or a
//!   SIGTERM/SIGINT via [`super::signal`]); spawns one handler thread
//!   per connection and stops accepting the moment a drain starts;
//! - **connection handlers** (one thread each): parse JSONL requests,
//!   run admission under the shared lock, and reply immediately
//!   (`accepted`/`shed`/`pong`/`status`/`error`). They never execute
//!   jobs and never block on the scheduler, so a flood of bad requests
//!   cannot stall dispatch. Reads carry a timeout so handlers notice
//!   the server draining even on an idle connection;
//! - **scheduler** (one thread): round-robin dispatch out of
//!   [`Admission`], one worker thread per running job (bounded by
//!   `workers`), completion collection, the per-job deadline watchdog,
//!   and the drain sequence. It is the only writer of the journal, so
//!   journal entries land in completion order without interleaving;
//! - **workers** (one thread per running job): install the job's
//!   [`CancelToken`], obs scope and tenant label (so `scatter` shards
//!   and warm-pool accounting inherit them), run the job under
//!   `catch_unwind`, and report back over a channel.
//!
//! Every response a client can observe is typed; overload sheds, bad
//! requests get `error` lines, deadlines become `timeout` outcomes and
//! a drain becomes `cancelled` outcomes — the server never answers a
//! request with silence and never panics on malformed input.
//!
//! The drain contract (also in `SERVICE.md`): stop accepting, shed new
//! submits as `draining`, journal still-queued jobs as cancelled, give
//! running jobs `drain_grace` to finish, then cancel their tokens and
//! give them `cancel_grace` to unwind; whatever still hasn't polled is
//! abandoned (journaled as cancelled) so shutdown completes in bounded
//! time no matter what a job does.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::runner::json::Value;
use crate::runner::{CancelToken, Cancelled, Job, JobCtx, JobError, Journal};

use super::protocol::{self, Request, Submit, TenantStatus};
use super::quota::{Admission, TenantQuota};
use super::wal::{Wal, WalRecord, WalState};

/// Builds a runnable [`Job`] from a submit request, or a client-visible
/// error message (unknown job name, bad parameters). The bench
/// binaries install the campaign registry here; tests install
/// synthetic jobs.
pub type JobFactory = Arc<dyn Fn(&Submit) -> Result<Job, String> + Send + Sync>;

/// Server tuning knobs. The defaults are sized for the integration
/// tests and the verify smoke; the `serve` binary exposes flags for
/// each.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Max jobs running concurrently across all tenants.
    pub workers: usize,
    /// Global cap on queued (admitted, undispatched) jobs.
    pub queue_cap: usize,
    /// Per-tenant quota.
    pub quota: TenantQuota,
    /// Deadline for submits that don't carry `deadline_ms`.
    pub default_deadline: Duration,
    /// How long a drain waits for running jobs to finish naturally
    /// before cancelling their tokens.
    pub drain_grace: Duration,
    /// How long a cancelled job gets to unwind before it is abandoned.
    pub cancel_grace: Duration,
    /// Journal of every accepted job's terminal outcome (`None`
    /// disables journaling).
    pub journal_path: Option<PathBuf>,
    /// Write-ahead submission log (`None` disables durability): every
    /// `accepted` is fsynced here before the client sees it, and every
    /// terminal outcome before its `done`.
    pub wal_path: Option<PathBuf>,
    /// Replay the WAL on startup, re-enqueueing non-terminal jobs
    /// under their original tenants (no-op without a WAL, or on a
    /// fresh log). On by default: an operator who configures a WAL
    /// wants the jobs in it to run.
    pub recover: bool,
    /// `fdatasync` WAL appends (group-committed) and journal terminal
    /// entries. Off trades power-loss durability for speed — crash
    /// safety against process death (kill -9) is retained either way,
    /// since both logs flush per line.
    pub sync: bool,
    /// Longest request line accepted, in bytes; longer frames get a
    /// typed `oversized_frame` error and are discarded without ever
    /// being buffered whole.
    pub max_frame_bytes: usize,
    /// Completed idempotency-key entries retained for dedup (oldest
    /// evicted first; also the compaction bound for completed pairs
    /// kept in the WAL across restarts).
    pub idem_cap: usize,
    /// Telemetry records buffered per subscriber before it is declared
    /// lagged and disconnected.
    pub sub_buffer: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            queue_cap: 256,
            quota: TenantQuota::default(),
            default_deadline: Duration::from_secs(30),
            drain_grace: Duration::from_secs(5),
            cancel_grace: Duration::from_secs(2),
            journal_path: None,
            wal_path: None,
            recover: true,
            sync: true,
            max_frame_bytes: 64 * 1024,
            idem_cap: 1024,
            sub_buffer: 256,
        }
    }
}

/// End-of-life counters returned by [`Server::wait`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceReport {
    /// Jobs that reached a terminal outcome (any kind).
    pub done: u64,
    /// Submits refused by admission.
    pub shed: u64,
    /// Jobs cancelled by the drain (queued evictions + token cancels +
    /// abandons).
    pub cancelled: u64,
    /// Jobs re-enqueued from the write-ahead log at startup.
    pub recovered: u64,
}

/// A connection's write side, shared between its handler thread, the
/// scheduler (terminal `done` responses) and subscriber pumps. Writes
/// carry a timeout (set at accept), so a client that stops reading
/// delays the server by a bounded amount, then loses the line.
type ConnWriter = Arc<Mutex<TcpStream>>;

/// Writes one response line, best-effort: a dead or stuck client must
/// never take the server down with it.
fn send_line(writer: &ConnWriter, line: &str) {
    let mut stream = writer.lock().unwrap_or_else(|e| e.into_inner());
    let _ = stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush());
}

/// An admitted-but-undispatched job. `writer` is `None` for jobs
/// re-enqueued from the WAL at startup — their submitting connection
/// died with the old process; a resubmit with the same idempotency key
/// re-attaches via the waiter list.
struct Pending {
    job_id: u64,
    job: Job,
    deadline: Duration,
    tag: Option<String>,
    idem_key: Option<String>,
    writer: Option<ConnWriter>,
}

/// Why a running job's token was cancelled.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CancelCause {
    Deadline,
    Drain,
}

/// Scheduler-side record of a running job.
struct Running {
    tenant: String,
    name: String,
    seed: u64,
    token: CancelToken,
    deadline: Instant,
    limit_ms: u64,
    tag: Option<String>,
    idem_key: Option<String>,
    writer: Option<ConnWriter>,
    cancel_cause: Option<CancelCause>,
    cancelled_at: Option<Instant>,
}

/// What a worker thread reports back. The scheduler supplies the
/// *meaning* of a cancellation unwind (deadline vs drain) because only
/// it knows why the token fired.
enum WorkerOutcome {
    Ok(String),
    Failed(String),
    Panicked(String),
    CancelUnwind,
}

/// One idempotency key's lifecycle. Keys move `InFlight` → `Done` and
/// are then retained (bounded by `idem_cap`) so a late resubmission
/// gets the original outcome instead of a second run.
enum IdemState {
    /// The keyed job is queued or running under this id.
    InFlight { job_id: u64 },
    Done {
        job_id: u64,
        job: String,
        outcome: Result<String, JobError>,
    },
}

/// The idempotency-key table: key → lifecycle state, with FIFO
/// eviction of completed entries once past the cap. In-flight entries
/// are never evicted — they are exactly the keys a reconnecting client
/// is about to resend.
#[derive(Default)]
struct IdemMap {
    entries: HashMap<String, IdemState>,
    done_order: VecDeque<String>,
}

impl IdemMap {
    /// Marks `key` completed, evicting the oldest completed entries
    /// beyond `cap`.
    fn record_done(
        &mut self,
        key: String,
        job_id: u64,
        job: String,
        outcome: Result<String, JobError>,
        cap: usize,
    ) {
        self.entries.insert(
            key.clone(),
            IdemState::Done {
                job_id,
                job,
                outcome,
            },
        );
        self.done_order.push_back(key);
        while self.done_order.len() > cap {
            if let Some(old) = self.done_order.pop_front() {
                if matches!(self.entries.get(&old), Some(IdemState::Done { .. })) {
                    self.entries.remove(&old);
                }
            }
        }
    }
}

/// Extra connections waiting on a job's terminal outcome: resubmits of
/// an in-flight idempotency key (typically a client that reconnected
/// after losing the original connection). Each waiter gets the `done`
/// line with its own tag.
type Waiters = HashMap<u64, Vec<(ConnWriter, Option<String>)>>;

/// State shared by the accept loop, connection handlers and scheduler.
struct Shared {
    admission: Mutex<Admission<Pending>>,
    /// Drain trigger (in-process shutdown, `shutdown` op; the accept
    /// loop additionally polls [`super::signal::requested`]).
    stop: AtomicBool,
    /// Set once the drain has completed; idle handlers exit on it.
    done: AtomicBool,
    next_job_id: AtomicU64,
    cancelled: AtomicU64,
    recovered: AtomicU64,
    /// Lock order where both are held: `idem` before `waiters`. That
    /// makes "saw InFlight → registered waiter" atomic against the
    /// scheduler's "record done → drain waiters", closing the window
    /// where a resubmit could register after the drain and wait
    /// forever.
    idem: Mutex<IdemMap>,
    waiters: Mutex<Waiters>,
    wal: Option<Wal>,
    cfg: ServiceConfig,
    factory: JobFactory,
}

impl Shared {
    /// Builds a `status` response from admission + warm-pool counters.
    fn status_line(&self) -> String {
        let warm: HashMap<String, (u64, u64)> = crate::warm_tenant_counters()
            .into_iter()
            .map(|(t, h, m)| (t, (h, m)))
            .collect();
        let adm = self.admission.lock().unwrap_or_else(|e| e.into_inner());
        let tenants: Vec<TenantStatus> = adm
            .tenant_counters()
            .into_iter()
            .map(|(tenant, queued, running, done, shed)| {
                let (warm_hits, warm_misses) = warm.get(&tenant).copied().unwrap_or((0, 0));
                TenantStatus {
                    tenant,
                    queued,
                    running,
                    done,
                    shed,
                    warm_hits,
                    warm_misses,
                }
            })
            .collect();
        protocol::status(
            adm.queued_total() as u64,
            adm.inflight_total() as u64,
            adm.done_total(),
            adm.shed_total(),
            adm.draining(),
            &tenants,
        )
    }
}

/// A running service instance. Dropping it does *not* stop the server;
/// call [`shutdown`](Self::shutdown) then [`wait`](Self::wait).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    scheduler: Option<std::thread::JoinHandle<ServiceReport>>,
}

impl Server {
    /// The bound address (useful with port 0 in tests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain (same path as SIGTERM).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until the drain completes and returns the final
    /// counters. Also called internally by the `serve` binary after a
    /// signal.
    pub fn wait(mut self) -> ServiceReport {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.scheduler
            .take()
            .map(|h| h.join().unwrap_or_default())
            .unwrap_or_default()
    }
}

/// Starts serving on `listener`. Returns immediately; the server runs
/// on background threads until a drain completes.
///
/// When a WAL is configured, startup first replays it (unless
/// `recover` is off), compacts it, and re-enqueues every non-terminal
/// job under its original tenant and job id — all *before* the accept
/// loop starts, so recovered work is ahead of new submits and job-id
/// allocation resumes above the high-water mark.
pub fn serve(
    listener: TcpListener,
    factory: JobFactory,
    cfg: ServiceConfig,
) -> std::io::Result<Server> {
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    // --- WAL replay + compaction (before any thread starts). ---
    let mut wal = None;
    let mut state = WalState::default();
    if let Some(path) = &cfg.wal_path {
        if cfg.recover {
            state = Wal::replay(path)?;
            Wal::compact(path, &state, cfg.idem_cap)?;
        }
        wal = Some(Wal::open(path, cfg.sync)?);
    }
    let mut idem = IdemMap::default();
    for (key, rec) in std::mem::take(&mut state.completed) {
        idem.record_done(key, rec.job_id, rec.job, rec.outcome, cfg.idem_cap);
    }

    let shared = Arc::new(Shared {
        admission: Mutex::new(Admission::new(cfg.queue_cap, cfg.quota)),
        stop: AtomicBool::new(false),
        done: AtomicBool::new(false),
        next_job_id: AtomicU64::new(state.max_job_id + 1),
        cancelled: AtomicU64::new(0),
        recovered: AtomicU64::new(0),
        idem: Mutex::new(idem),
        waiters: Mutex::new(Waiters::new()),
        wal,
        cfg: cfg.clone(),
        factory,
    });

    // --- Re-enqueue the recovered backlog. Jobs whose factory no
    // longer recognizes them (registry changed across the restart)
    // are terminally failed instead — durably, so they never replay
    // again — and journaled by the scheduler at startup.
    let mut unbuildable: Vec<(String, u64, String, Option<String>, JobError)> = Vec::new();
    for p in state.pending {
        let submit = Submit {
            tenant: p.tenant.clone(),
            job: p.job.clone(),
            params: p.params.clone(),
            deadline_ms: p.deadline_ms,
            tag: None,
            idem_key: p.idem_key.clone(),
        };
        match (shared.factory)(&submit) {
            Ok(job) => {
                if let Some(key) = &p.idem_key {
                    let mut idem = shared.idem.lock().unwrap_or_else(|e| e.into_inner());
                    idem.entries
                        .insert(key.clone(), IdemState::InFlight { job_id: p.job_id });
                }
                let pending = Pending {
                    job_id: p.job_id,
                    job,
                    deadline: p
                        .deadline_ms
                        .map_or(cfg.default_deadline, Duration::from_millis),
                    tag: None,
                    idem_key: p.idem_key.clone(),
                    writer: None,
                };
                {
                    let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
                    adm.restore(&p.tenant, pending, p.bytes as usize);
                }
                if let Some(w) = &shared.wal {
                    w.append(&WalRecord::Recovered { job_id: p.job_id })?;
                }
                if crate::obs::telemetry_active() {
                    crate::obs::telemetry::emit(
                        "service_recovered",
                        vec![
                            ("job_id", Value::UInt(p.job_id)),
                            ("tenant", Value::Str(p.tenant.clone())),
                            ("job", Value::Str(p.job.clone())),
                        ],
                    );
                }
                shared.recovered.fetch_add(1, Ordering::Relaxed);
            }
            Err(message) => {
                unbuildable.push((
                    p.tenant.clone(),
                    p.job_id,
                    p.job.clone(),
                    p.idem_key.clone(),
                    JobError::Failed {
                        message: format!("recovery: job no longer buildable: {message}"),
                    },
                ));
            }
        }
    }

    // Completions flow from worker threads to the scheduler; the
    // scheduler owns the receiver and a template sender for workers.
    let (tx, rx) = channel::<(u64, WorkerOutcome)>();

    let scheduler = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("vsnoop-svc-sched".into())
            .spawn(move || scheduler_loop(&shared, tx, rx, unbuildable))?
    };

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("vsnoop-svc-accept".into())
            .spawn(move || accept_loop(&listener, &shared))?
    };

    Ok(Server {
        addr,
        shared,
        accept: Some(accept),
        scheduler: Some(scheduler),
    })
}

/// Accepts connections until a drain starts (in-process flag or OS
/// signal), spawning one handler thread per connection.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.stop.load(Ordering::SeqCst) || super::signal::requested() {
            // Propagate a signal-initiated drain to the scheduler.
            shared.stop.store(true, Ordering::SeqCst);
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Bounded I/O: a stalled client costs at most the
                // timeout per line, never a wedged thread.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("vsnoop-svc-conn".into())
                    .spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// One step of the bounded frame reader.
enum Frame {
    /// A complete line landed in the caller's buffer.
    Line,
    /// A line exceeded the frame cap; its bytes were discarded as they
    /// streamed in (never buffered whole) and the terminating newline
    /// has been consumed.
    Oversized,
    /// Read timeout with no complete line (partial bytes are kept).
    Idle,
    /// EOF or a hard socket error.
    Closed,
}

/// Reads up to one `\n`-terminated frame into `line`, enforcing `max`
/// bytes. Unlike `read_line`, an over-long frame costs O(max) memory,
/// not O(frame): once the cap is crossed the rest of the line streams
/// through a fixed-size buffer straight to the floor (`discarding`
/// carries that state across idle timeouts).
fn read_frame(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
    max: usize,
    discarding: &mut bool,
) -> Frame {
    loop {
        let (consumed, result) = {
            let buf = match reader.fill_buf() {
                Ok([]) => return Frame::Closed,
                Ok(buf) => buf,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Frame::Idle;
                }
                Err(_) => return Frame::Closed,
            };
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let overflow = *discarding || line.len() + pos > max;
                    if overflow {
                        *discarding = false;
                        line.clear();
                        (pos + 1, Some(Frame::Oversized))
                    } else {
                        line.extend_from_slice(&buf[..pos]);
                        (pos + 1, Some(Frame::Line))
                    }
                }
                None => {
                    if !*discarding {
                        if line.len() + buf.len() > max {
                            *discarding = true;
                            line.clear();
                        } else {
                            line.extend_from_slice(buf);
                        }
                    }
                    (buf.len(), None)
                }
            }
        };
        reader.consume(consumed);
        if let Some(frame) = result {
            return frame;
        }
    }
}

/// Serves one connection: reads JSONL requests until EOF (or until the
/// drain completes on an idle connection) and answers each one.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let writer: ConnWriter = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    let mut discarding = false;
    let mut tap_id: Option<u64> = None;
    loop {
        match read_frame(
            &mut reader,
            &mut line,
            shared.cfg.max_frame_bytes,
            &mut discarding,
        ) {
            Frame::Line => {
                let text = String::from_utf8_lossy(&line);
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    handle_request(trimmed, &writer, shared, &mut tap_id);
                }
                line.clear();
            }
            Frame::Oversized => {
                send_line(
                    &writer,
                    &protocol::error_coded(
                        &format!("request line exceeds {} bytes", shared.cfg.max_frame_bytes),
                        "oversized_frame",
                        false,
                        &None,
                    ),
                );
            }
            Frame::Idle => {
                // Idle poll; any partial line read before the timeout
                // stays in `line` and completes on a later read. Once
                // the drain has fully completed there is nothing left
                // this connection can be told; close it.
                if shared.done.load(Ordering::SeqCst) {
                    break;
                }
            }
            Frame::Closed => break,
        }
    }
    if let Some(id) = tap_id {
        crate::obs::telemetry::remove_tap(id);
    }
}

/// Dispatches one parsed request line.
fn handle_request(line: &str, writer: &ConnWriter, shared: &Arc<Shared>, tap_id: &mut Option<u64>) {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(message) => {
            // Best-effort tag echo so even a malformed submit can be
            // correlated by the client.
            let tag = Value::parse(line)
                .ok()
                .and_then(|v| v.get("tag").and_then(Value::as_str).map(str::to_string));
            send_line(writer, &protocol::error(&message, &tag));
            return;
        }
    };
    match request {
        Request::Submit(submit) => handle_submit(submit, line.len(), writer, shared),
        Request::Status => send_line(writer, &shared.status_line()),
        Request::Ping => send_line(writer, &protocol::pong()),
        Request::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            send_line(writer, &protocol::shutting_down());
        }
        Request::Subscribe => {
            if tap_id.is_some() {
                send_line(writer, &protocol::error("already subscribed", &None));
                return;
            }
            send_line(writer, &protocol::subscribed());
            // Tap → *bounded* channel → pump thread → socket. The tap
            // never blocks (telemetry producers hold the tap lock while
            // emitting, so a stalled subscriber must cost them nothing):
            // when the buffer is full the tap just raises the lagged
            // flag. The pump notices, emits `subscriber_lagged`, and
            // disconnects the subscription — the tap closure itself
            // cannot call `remove_tap`, which takes the lock `emit` is
            // already holding when it invokes taps.
            let (tx, rx) = sync_channel::<String>(shared.cfg.sub_buffer);
            let lagged = Arc::new(AtomicBool::new(false));
            let lag_flag = Arc::clone(&lagged);
            let id = crate::obs::telemetry::add_tap(move |record| {
                if lag_flag.load(Ordering::Relaxed) {
                    return;
                }
                if let Err(TrySendError::Full(_)) = tx.try_send(record.to_string()) {
                    lag_flag.store(true, Ordering::Relaxed);
                }
            });
            *tap_id = Some(id);
            let pump_writer = Arc::clone(writer);
            let _ = std::thread::Builder::new()
                .name("vsnoop-svc-sub".into())
                .spawn(move || loop {
                    if lagged.load(Ordering::Relaxed) {
                        crate::obs::telemetry::remove_tap(id);
                        if crate::obs::telemetry_active() {
                            crate::obs::telemetry::emit(
                                "subscriber_lagged",
                                vec![("tap", Value::UInt(id))],
                            );
                        }
                        send_line(
                            &pump_writer,
                            &protocol::error_coded(
                                "subscriber lagged; subscription dropped",
                                "subscriber_lagged",
                                true,
                                &None,
                            ),
                        );
                        return;
                    }
                    match rx.recv_timeout(Duration::from_millis(100)) {
                        Ok(record) => {
                            let mut stream = pump_writer.lock().unwrap_or_else(|e| e.into_inner());
                            let ok = stream
                                .write_all(record.as_bytes())
                                .and_then(|()| stream.write_all(b"\n"))
                                .and_then(|()| stream.flush())
                                .is_ok();
                            if !ok {
                                crate::obs::telemetry::remove_tap(id);
                                return;
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        // Tap removed elsewhere (connection closed).
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                });
        }
    }
}

/// Admission for one submit: dedup on the idempotency key, build the
/// job, offer it, make the acceptance durable, answer.
///
/// Durability ordering: the WAL `accepted` record is written *and
/// fsynced* before the `accepted` line goes out — a client that has
/// seen `accepted` owns a job that survives any crash. If the WAL
/// write fails the client gets a retryable `wal_failed` error instead
/// (the job still runs, and a keyed retry dedups against it, so the
/// failure degrades durability without breaking no-duplication).
fn handle_submit(submit: Submit, bytes: usize, writer: &ConnWriter, shared: &Arc<Shared>) {
    // Idempotency dedup first: a duplicate must be answered from the
    // original run even when the server is draining or the queue is
    // full — the original acceptance already promised the work.
    if let Some(key) = &submit.idem_key {
        let idem = shared.idem.lock().unwrap_or_else(|e| e.into_inner());
        match idem.entries.get(key) {
            Some(IdemState::Done {
                job_id,
                job,
                outcome,
            }) => {
                let (job_id, line) = (*job_id, protocol::done(*job_id, job, outcome, &submit.tag));
                drop(idem);
                emit_idem_hit(shared, job_id, &submit, "done");
                send_line(writer, &protocol::accepted(job_id, &submit.tag));
                send_line(writer, &line);
                return;
            }
            Some(IdemState::InFlight { job_id }) => {
                let job_id = *job_id;
                // Still holding `idem`: the scheduler cannot record
                // this key done (it takes `idem` first), so the waiter
                // we register below is guaranteed to be drained.
                {
                    let mut waiters = shared.waiters.lock().unwrap_or_else(|e| e.into_inner());
                    waiters
                        .entry(job_id)
                        .or_default()
                        .push((Arc::clone(writer), submit.tag.clone()));
                }
                drop(idem);
                emit_idem_hit(shared, job_id, &submit, "in_flight");
                send_line(writer, &protocol::accepted(job_id, &submit.tag));
                return;
            }
            None => {}
        }
    }
    let job = match (shared.factory)(&submit) {
        Ok(job) => job,
        Err(message) => {
            send_line(writer, &protocol::error(&message, &submit.tag));
            return;
        }
    };
    let deadline = submit
        .deadline_ms
        .map_or(shared.cfg.default_deadline, Duration::from_millis);
    let job_id = shared.next_job_id.fetch_add(1, Ordering::Relaxed);
    if let Some(key) = &submit.idem_key {
        let mut idem = shared.idem.lock().unwrap_or_else(|e| e.into_inner());
        // A racing duplicate may have won between our peek and now;
        // defer to it exactly as the peek would have.
        match idem.entries.get(key) {
            Some(IdemState::Done {
                job_id,
                job,
                outcome,
            }) => {
                let (existing, line) =
                    (*job_id, protocol::done(*job_id, job, outcome, &submit.tag));
                drop(idem);
                emit_idem_hit(shared, existing, &submit, "race");
                send_line(writer, &protocol::accepted(existing, &submit.tag));
                send_line(writer, &line);
                return;
            }
            Some(IdemState::InFlight { job_id }) => {
                let existing = *job_id;
                {
                    let mut waiters = shared.waiters.lock().unwrap_or_else(|e| e.into_inner());
                    waiters
                        .entry(existing)
                        .or_default()
                        .push((Arc::clone(writer), submit.tag.clone()));
                }
                drop(idem);
                emit_idem_hit(shared, existing, &submit, "race");
                send_line(writer, &protocol::accepted(existing, &submit.tag));
                return;
            }
            None => {}
        }
        idem.entries
            .insert(key.clone(), IdemState::InFlight { job_id });
    }
    let pending = Pending {
        job_id,
        job,
        deadline,
        tag: submit.tag.clone(),
        idem_key: submit.idem_key.clone(),
        writer: Some(Arc::clone(writer)),
    };
    let offered = {
        let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
        adm.offer(&submit.tenant, pending, bytes)
    };
    match offered {
        Ok(()) => {
            if let Some(w) = &shared.wal {
                let record = WalRecord::Accepted {
                    job_id,
                    tenant: submit.tenant.clone(),
                    job: submit.job.clone(),
                    params: submit.params.clone(),
                    deadline_ms: submit.deadline_ms,
                    idem_key: submit.idem_key.clone(),
                    bytes: bytes as u64,
                };
                if let Err(e) = w.append(&record) {
                    eprintln!("service: wal append failed for job {job_id}: {e}");
                    send_line(
                        writer,
                        &protocol::error_coded(
                            "acceptance could not be made durable; retry",
                            "wal_failed",
                            true,
                            &submit.tag,
                        ),
                    );
                    return;
                }
            }
            if crate::obs::telemetry_active() {
                crate::obs::telemetry::emit(
                    "service_admit",
                    vec![
                        ("job_id", Value::UInt(job_id)),
                        ("tenant", Value::Str(submit.tenant.clone())),
                        ("job", Value::Str(submit.job.clone())),
                    ],
                );
            }
            send_line(writer, &protocol::accepted(job_id, &submit.tag));
        }
        Err(reason) => {
            // The key never entered flight: forget it so a later
            // (post-backoff) retry is a fresh submission.
            if let Some(key) = &submit.idem_key {
                let mut idem = shared.idem.lock().unwrap_or_else(|e| e.into_inner());
                if matches!(idem.entries.get(key), Some(IdemState::InFlight { job_id: id }) if *id == job_id)
                {
                    idem.entries.remove(key);
                }
            }
            if crate::obs::telemetry_active() {
                crate::obs::telemetry::emit(
                    "service_shed",
                    vec![
                        ("tenant", Value::Str(submit.tenant.clone())),
                        ("job", Value::Str(submit.job.clone())),
                        ("reason", Value::Str(reason.as_str().into())),
                    ],
                );
            }
            send_line(writer, &protocol::shed(reason, &submit.tag));
        }
    }
}

/// Telemetry for a deduplicated (idempotency-key) submit.
fn emit_idem_hit(shared: &Arc<Shared>, job_id: u64, submit: &Submit, phase: &str) {
    let _ = shared;
    if crate::obs::telemetry_active() {
        crate::obs::telemetry::emit(
            "service_idem_hit",
            vec![
                ("job_id", Value::UInt(job_id)),
                ("tenant", Value::Str(submit.tenant.clone())),
                ("job", Value::Str(submit.job.clone())),
                ("phase", Value::Str(phase.to_string())),
            ],
        );
    }
}

/// The scheduler: dispatch, deadlines, completions, drain.
fn scheduler_loop(
    shared: &Arc<Shared>,
    tx: Sender<(u64, WorkerOutcome)>,
    rx: Receiver<(u64, WorkerOutcome)>,
    unbuildable: Vec<(String, u64, String, Option<String>, JobError)>,
) -> ServiceReport {
    let mut journal = shared.cfg.journal_path.as_deref().and_then(|p| {
        Journal::open_with_sync(p, false, shared.cfg.sync)
            .map_err(|e| eprintln!("service: journal {}: {e}", p.display()))
            .ok()
    });
    let mut running: HashMap<u64, Running> = HashMap::new();

    // Recovered jobs whose factory rejected them (the registry changed
    // across the restart): give them a durable terminal outcome right
    // away — "exactly one terminal outcome per accepted job" has to
    // hold even for work that can no longer run.
    for (tenant, job_id, name, idem_key, err) in unbuildable {
        finish_job(
            shared,
            &mut journal,
            &tenant,
            job_id,
            &name,
            0,
            &None,
            &idem_key,
            &None,
            Err(err),
        );
    }

    // Service heartbeat: queue/running/shed depth plus the process-wide
    // RSS and warm-pool counters, emitted on the shared obs cadence and
    // visible to subscribers even without a trace dir. The tick gates
    // itself so an idle, untraced server does no per-interval work.
    let _heartbeat = {
        let shared = Arc::clone(shared);
        crate::obs::Heartbeat::spawn("service", heartbeat_interval(), move || {
            if !crate::obs::telemetry_active() {
                return;
            }
            let (queued, inflight, done, shed, draining) = {
                let adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
                (
                    adm.queued_total() as u64,
                    adm.inflight_total() as u64,
                    adm.done_total(),
                    adm.shed_total(),
                    adm.draining(),
                )
            };
            let (warm_hits, warm_misses, warm_evictions) = crate::warm_counters();
            crate::obs::telemetry::emit(
                "service_heartbeat",
                vec![
                    ("queued", Value::UInt(queued)),
                    ("running", Value::UInt(inflight)),
                    ("done", Value::UInt(done)),
                    ("shed", Value::UInt(shed)),
                    ("draining", Value::Bool(draining)),
                    ("rss_bytes", Value::UInt(crate::obs::current_rss_bytes())),
                    ("warm_hits", Value::UInt(warm_hits)),
                    ("warm_misses", Value::UInt(warm_misses)),
                    ("warm_evictions", Value::UInt(warm_evictions)),
                ],
            );
        })
    };

    let mut draining = false;
    let mut drain_started: Option<Instant> = None;
    let mut tokens_cancelled = false;

    loop {
        // 1. Notice a drain request and run its first step exactly once:
        //    stop admission, journal the queued backlog as cancelled.
        if !draining && shared.stop.load(Ordering::SeqCst) {
            draining = true;
            drain_started = Some(Instant::now());
            let evicted = {
                let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
                adm.set_draining();
                adm.evict_queued()
            };
            for (tenant, pending) in evicted {
                let outcome = Err(JobError::Cancelled {
                    reason: "drain: evicted from queue".into(),
                });
                finish_job(
                    shared,
                    &mut journal,
                    &tenant,
                    pending.job_id,
                    &pending.job.spec.name,
                    pending.job.spec.seed,
                    &pending.tag,
                    &pending.idem_key,
                    &pending.writer,
                    outcome,
                );
                shared.cancelled.fetch_add(1, Ordering::Relaxed);
                // Nothing was in flight for this job: bump only the
                // tenant's terminal count.
                let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
                adm.finish_queued(&tenant);
            }
        }

        // 2. Dispatch while worker slots are free (skipped once
        //    draining — the queue is already empty then).
        while running.len() < shared.cfg.workers {
            let next = {
                let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
                adm.next_dispatch()
            };
            let Some((tenant, pending)) = next else { break };
            dispatch(shared, &tx, &mut running, tenant, pending);
        }

        // 3. Collect one completion (bounded wait keeps the watchdog
        //    and drain timers live even when nothing completes).
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok((job_id, outcome)) => {
                // An abandoned job's late completion: its record is
                // gone; drop the message.
                if let Some(run) = running.remove(&job_id) {
                    let outcome = interpret(outcome, &run);
                    if matches!(
                        outcome,
                        Err(JobError::TimedOut { .. } | JobError::Cancelled { .. })
                    ) {
                        shared.cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                    finish_job(
                        shared,
                        &mut journal,
                        &run.tenant,
                        job_id,
                        &run.name,
                        run.seed,
                        &run.tag,
                        &run.idem_key,
                        &run.writer,
                        outcome,
                    );
                    let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
                    adm.finish(&run.tenant);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => unreachable!("scheduler holds a sender"),
        }

        // 4. Deadline watchdog: cancel overdue tokens; abandon jobs
        //    that ignored the cancel past `cancel_grace`.
        let now = Instant::now();
        let mut abandoned: Vec<u64> = Vec::new();
        for (id, run) in running.iter_mut() {
            if run.cancel_cause.is_none() && now >= run.deadline {
                run.token.cancel();
                run.cancel_cause = Some(CancelCause::Deadline);
                run.cancelled_at = Some(now);
            }
            if let Some(at) = run.cancelled_at {
                if now.duration_since(at) >= shared.cfg.cancel_grace {
                    abandoned.push(*id);
                }
            }
        }
        for id in abandoned {
            let run = running.remove(&id).expect("abandoned id vanished");
            let outcome = Err(abandon_error(&run));
            shared.cancelled.fetch_add(1, Ordering::Relaxed);
            finish_job(
                shared,
                &mut journal,
                &run.tenant,
                id,
                &run.name,
                run.seed,
                &run.tag,
                &run.idem_key,
                &run.writer,
                outcome,
            );
            let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
            adm.finish(&run.tenant);
        }

        // 5. Drain progression: natural-finish window, then cancel
        //    everything still running; exit once nothing is left.
        if draining {
            if running.is_empty() {
                break;
            }
            if !tokens_cancelled
                && drain_started.is_some_and(|t| t.elapsed() >= shared.cfg.drain_grace)
            {
                tokens_cancelled = true;
                let now = Instant::now();
                for run in running.values_mut() {
                    if run.cancel_cause.is_none() {
                        run.token.cancel();
                        run.cancel_cause = Some(CancelCause::Drain);
                        run.cancelled_at = Some(now);
                    }
                }
            }
        }
    }

    // Drain complete: flush and report. (Journal appends flush per
    // line; dropping it closes the file.)
    drop(journal);
    let report = {
        let adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
        ServiceReport {
            done: adm.done_total(),
            shed: adm.shed_total(),
            cancelled: shared.cancelled.load(Ordering::Relaxed),
            recovered: shared.recovered.load(Ordering::Relaxed),
        }
    };
    if crate::obs::telemetry_active() {
        crate::obs::telemetry::emit(
            "service_drained",
            vec![
                ("done", Value::UInt(report.done)),
                ("shed", Value::UInt(report.shed)),
                ("cancelled", Value::UInt(report.cancelled)),
                ("recovered", Value::UInt(report.recovered)),
            ],
        );
    }
    shared.done.store(true, Ordering::SeqCst);
    report
}

/// Telemetry heartbeat period: `VSNOOP_HEARTBEAT_MS`, default 1000
/// (same knob the campaign supervisor honours).
fn heartbeat_interval() -> Duration {
    let ms = std::env::var("VSNOOP_HEARTBEAT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(1000);
    Duration::from_millis(ms)
}

/// Spawns the worker thread for one dispatched job and records it in
/// the running map.
fn dispatch(
    shared: &Arc<Shared>,
    tx: &Sender<(u64, WorkerOutcome)>,
    running: &mut HashMap<u64, Running>,
    tenant: String,
    pending: Pending,
) {
    let Pending {
        job_id,
        job,
        deadline,
        tag,
        idem_key,
        writer,
    } = pending;
    let token = CancelToken::new();
    let limit_ms = deadline.as_millis() as u64;
    running.insert(
        job_id,
        Running {
            tenant: tenant.clone(),
            name: job.spec.name.clone(),
            seed: job.spec.seed,
            token: token.clone(),
            deadline: Instant::now() + deadline,
            limit_ms,
            tag,
            idem_key,
            writer,
            cancel_cause: None,
            cancelled_at: None,
        },
    );
    if crate::obs::telemetry_active() {
        crate::obs::telemetry::emit(
            "service_dispatch",
            vec![
                ("job_id", Value::UInt(job_id)),
                ("tenant", Value::Str(tenant.clone())),
                ("job", Value::Str(job.spec.name.clone())),
            ],
        );
    }
    let tx = tx.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("vsnoop-svc-job-{job_id}"))
        .spawn(move || {
            let ctx = JobCtx {
                token: token.clone(),
                attempt: 1,
            };
            let name = job.spec.name.clone();
            let result = catch_unwind(AssertUnwindSafe(|| {
                crate::runner::with_current(token.clone(), || {
                    crate::obs::with_scope(&name, || {
                        crate::obs::with_tenant(&tenant, || (job.run)(&ctx))
                    })
                })
            }));
            let outcome = match result {
                Ok(Ok(output)) => WorkerOutcome::Ok(output),
                Ok(Err(message)) => WorkerOutcome::Failed(message),
                Err(payload) => {
                    if payload.downcast_ref::<Cancelled>().is_some() {
                        WorkerOutcome::CancelUnwind
                    } else {
                        WorkerOutcome::Panicked(crate::runner::panic_message(payload.as_ref()))
                    }
                }
            };
            // The scheduler may have abandoned us; a closed channel is
            // simply ignored.
            let _ = tx.send((job_id, outcome));
        });
    if spawned.is_err() {
        // Thread spawn failure (resource exhaustion): fail the job
        // through the normal path rather than leaking the slot.
        let run = running.remove(&job_id).expect("just inserted");
        let outcome = Err(JobError::Failed {
            message: "service: could not spawn worker thread".into(),
        });
        let mut journal_none: Option<Journal> = None;
        finish_job(
            shared,
            &mut journal_none,
            &run.tenant,
            job_id,
            &run.name,
            run.seed,
            &run.tag,
            &run.idem_key,
            &run.writer,
            outcome,
        );
        let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
        adm.finish(&run.tenant);
    }
}

/// Maps a worker's raw outcome to the client-visible error, using the
/// scheduler's knowledge of *why* a cancellation unwind happened.
fn interpret(outcome: WorkerOutcome, run: &Running) -> Result<String, JobError> {
    match outcome {
        WorkerOutcome::Ok(output) => Ok(output),
        WorkerOutcome::Failed(message) => Err(JobError::Failed { message }),
        WorkerOutcome::Panicked(message) => Err(JobError::Panicked { message }),
        WorkerOutcome::CancelUnwind => match run.cancel_cause {
            Some(CancelCause::Deadline) | None => Err(JobError::TimedOut {
                limit_ms: run.limit_ms,
            }),
            Some(CancelCause::Drain) => Err(JobError::Cancelled {
                reason: "drain".into(),
            }),
        },
    }
}

/// The error journaled for a job abandoned after ignoring its cancel.
fn abandon_error(run: &Running) -> JobError {
    match run.cancel_cause {
        Some(CancelCause::Drain) => JobError::Cancelled {
            reason: "drain: abandoned (never polled)".into(),
        },
        _ => JobError::TimedOut {
            limit_ms: run.limit_ms,
        },
    }
}

/// Terminal bookkeeping shared by every completion path: telemetry,
/// WAL `done` record, journal entry, idempotency-map completion,
/// `done` responses to the submitting connection and every waiter.
///
/// Ordering is the durability contract's other half: the outcome is
/// made durable (WAL fsync, journal) *before* any client sees `done`,
/// so an outcome a client has observed can never be re-run after a
/// restart — that would duplicate the job's side effects.
#[allow(clippy::too_many_arguments)]
fn finish_job(
    shared: &Arc<Shared>,
    journal: &mut Option<Journal>,
    tenant: &str,
    job_id: u64,
    name: &str,
    seed: u64,
    tag: &Option<String>,
    idem_key: &Option<String>,
    writer: &Option<ConnWriter>,
    outcome: Result<String, JobError>,
) {
    if crate::obs::telemetry_active() {
        let status = match &outcome {
            Ok(_) => "ok".to_string(),
            Err(e) => e.kind().to_string(),
        };
        crate::obs::telemetry::emit(
            "service_done",
            vec![
                ("job_id", Value::UInt(job_id)),
                ("tenant", Value::Str(tenant.to_string())),
                ("job", Value::Str(name.to_string())),
                ("status", Value::Str(status)),
            ],
        );
    }
    if let Some(w) = &shared.wal {
        let record = WalRecord::Done {
            job_id,
            outcome: outcome.clone(),
        };
        if let Err(e) = w.append(&record) {
            eprintln!("service: wal done append failed for job {job_id}: {e}");
        }
    }
    if let Some(j) = journal.as_mut() {
        let entry = protocol::journal_entry(job_id, name, seed, outcome.clone());
        if let Err(e) = j.append(&entry) {
            eprintln!("service: journal append failed: {e}");
        }
    }
    // Record completion in the idem map *before* collecting waiters
    // (same idem → waiters lock order as submit-side registration): a
    // duplicate submit either sees InFlight and lands in the waiter
    // list we are about to drain, or sees Done and answers itself.
    let waiting = {
        if let Some(key) = idem_key {
            let mut idem = shared.idem.lock().unwrap_or_else(|e| e.into_inner());
            idem.record_done(
                key.clone(),
                job_id,
                name.to_string(),
                outcome.clone(),
                shared.cfg.idem_cap,
            );
        }
        let mut waiters = shared.waiters.lock().unwrap_or_else(|e| e.into_inner());
        waiters.remove(&job_id).unwrap_or_default()
    };
    if let Some(w) = writer {
        send_line(w, &protocol::done(job_id, name, &outcome, tag));
    }
    for (w, waiter_tag) in waiting {
        send_line(&w, &protocol::done(job_id, name, &outcome, &waiter_tag));
    }
}

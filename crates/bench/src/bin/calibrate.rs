//! Calibration helper: prints, for every simulation application, the raw
//! trace statistics the Table V / Fig. 1 profiles are tuned against.
//!
//! Not a paper artifact — a development tool kept in-tree so future
//! profile adjustments can be validated quickly:
//!
//! ```text
//! VSNOOP_SCALE=quick cargo run --release -p vsnoop-bench --bin calibrate
//! ```

use vsnoop::experiments::{run_pinned, RunScale};
use vsnoop::{ContentPolicy, FilterPolicy, SystemConfig};
use vsnoop_bench::{f1, heading, opt, scale_from_env, TextTable};
use workloads::simulation_apps;

fn main() {
    vsnoop_bench::init_obs();
    heading(
        "Calibration: raw per-application trace statistics",
        "miss rate = L2 misses / accesses; content columns are Table V's\n\
         metrics; paper targets shown for comparison.",
    );
    let cfg = SystemConfig::paper_default();
    let scale = scale_from_env();
    let mut t = TextTable::new([
        "workload",
        "L1 hit %",
        "L2 miss rate %",
        "content access %",
        "(paper)",
        "content miss %",
        "(paper)",
    ]);
    for app in simulation_apps() {
        let sim = run_pinned(
            app,
            FilterPolicy::VsnoopBase,
            ContentPolicy::Broadcast,
            true,
            false,
            cfg,
            scale,
        );
        let s = sim.stats();
        t.row([
            app.name.to_string(),
            f1(100.0 * s.l1_hits as f64 / s.accesses.max(1) as f64),
            f1(100.0 * s.miss_rate()),
            f1(100.0 * s.content_access_fraction()),
            opt(app.targets.table5_access_pct),
            f1(100.0 * s.content_miss_fraction()),
            opt(app.targets.table5_miss_pct),
        ]);
    }
    println!("{t}");

    let rs = RunScale {
        measure_rounds: scale.measure_rounds,
        ..scale
    };
    let _ = rs;
}

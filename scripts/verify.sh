#!/usr/bin/env bash
# Full offline verification: tier-1 build+test, formatting, lints, and the
# robustness soak. No network access required — all third-party deps are
# vendored API shims (see DESIGN.md "Dependencies").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
# --workspace matters: the soak/perf/all binaries used below live in
# crates/bench, which a bare root-package build would not (re)compile —
# the smokes would then run stale binaries.
cargo build --release --workspace

echo "==> cargo test -q --workspace (deterministic suites)"
cargo test -q --workspace

echo "==> cargo test -q --workspace --features proptest (randomized suites)"
cargo test -q --workspace --features proptest

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (default features)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (--features proptest)"
cargo clippy --workspace --all-targets --features proptest -- -D warnings

echo "==> robustness soak (fault injection + invariant checker)"
./target/release/soak

echo "==> perf smoke (throughput harness + regression gate)"
# A short run of every bin: produces the machine-readable throughput
# report and fails if any bin regressed >20% (PERF_REGRESSION_PCT)
# against the committed baseline. Windows are shortened but the warmup
# keeps its full default length — measuring before the caches reach
# steady state reads systematically low against the baseline, which is
# regenerated with the default (longer) windows.
PERF_ROUNDS=4000 ./target/release/perf \
  --reps 2 \
  --out target/BENCH_throughput.json \
  --check BENCH_throughput.json
test -s target/BENCH_throughput.json

echo "==> campaign runner smoke (panic isolation + degraded mode)"
# A 3-job sub-campaign with one injected panic must complete, exit 0 in
# degraded mode, flag the failure, and write a crash reproducer.
SMOKE_DIR=target/campaign/verify-smoke
rm -rf "$SMOKE_DIR"
mkdir -p target/campaign
VSNOOP_SCALE=quick ./target/release/all \
  --only fig2 --only table2 --only table3 \
  --inject-panic table2 --jobs 2 --dir "$SMOKE_DIR" > "$SMOKE_DIR.out" 2> "$SMOKE_DIR.err"
grep -q "table2 — FAILED" "$SMOKE_DIR.out"
grep -q "DEGRADED" "$SMOKE_DIR.err"
test -s "$SMOKE_DIR/repro-table2.json"

echo "==> campaign runner smoke (kill + --resume determinism)"
# Kill a campaign mid-flight, resume it, and require the merged journal
# and report to be byte-identical to an uninterrupted run's.
RESUME_DIR=target/campaign/verify-resume
CLEAN_DIR=target/campaign/verify-clean
rm -rf "$RESUME_DIR" "$CLEAN_DIR"
VSNOOP_SCALE=quick ./target/release/all --jobs 1 --dir "$RESUME_DIR" \
  > /dev/null 2>&1 &
CAMPAIGN_PID=$!
for _ in $(seq 1 600); do
  [ -s "$RESUME_DIR/journal.jsonl" ] && break
  sleep 0.1
done
[ -s "$RESUME_DIR/journal.jsonl" ] # at least one checkpoint before the kill
kill -9 "$CAMPAIGN_PID" 2>/dev/null || true
wait "$CAMPAIGN_PID" 2>/dev/null || true
VSNOOP_SCALE=quick ./target/release/all --jobs 1 --dir "$RESUME_DIR" --resume \
  > /dev/null 2>&1
VSNOOP_SCALE=quick ./target/release/all --jobs 1 --workers 1 --dir "$CLEAN_DIR" \
  > /dev/null 2>&1
cmp "$RESUME_DIR/merged.jsonl" "$CLEAN_DIR/merged.jsonl"
cmp "$RESUME_DIR/campaign.txt" "$CLEAN_DIR/campaign.txt"

echo "==> campaign runner smoke (sharded vs serial byte-identity)"
# The heavy reports fan per-application cells over the shard pool
# (--workers); output must be byte-identical to the serial legacy path
# at any worker count. CLEAN_DIR above ran with --workers 1 (forced
# serial), so comparing against an oversubscribed 4-worker run
# exercises scatter's order preservation even on a single-core host.
SHARD_DIR=target/campaign/verify-sharded
rm -rf "$SHARD_DIR"
VSNOOP_SCALE=quick ./target/release/all --jobs 1 --workers 4 --dir "$SHARD_DIR" \
  > /dev/null 2>&1
cmp "$SHARD_DIR/campaign.txt" "$CLEAN_DIR/campaign.txt"
cmp "$SHARD_DIR/merged.jsonl" "$CLEAN_DIR/merged.jsonl"

echo "verify.sh: ALL CHECKS PASSED"

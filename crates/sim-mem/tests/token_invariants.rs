//! Token-coherence invariants under adversarial snoop destination sets.
//!
//! Invariants checked over operation sequences with arbitrary (possibly
//! wrong) destination sets:
//!
//! 1. Token conservation: for every block, cache tokens + memory tokens
//!    equal the total.
//! 2. At most one owner per block.
//! 3. Residence counters always equal the scan count of tagged lines.
//! 4. A *broadcast* request always succeeds (the forward-progress
//!    guarantee behind persistent requests), even right after a storm of
//!    failed partial-destination transients (the safe-retry property).
//!
//! The deterministic seeded-loop tests below always run; the randomized
//! property-based versions live in the [`randomized`] module, gated
//! behind `cargo test --features proptest`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim_mem::{BlockAddr, Cache, CacheGeometry, LineTag, ReadMode, TokenProtocol};
use sim_vm::VmId;

const N_CORES: usize = 8;
const N_VMS: usize = 4;
const N_BLOCKS: u64 = 24;

fn dests_from_mask(core: usize, mask: u8) -> Vec<usize> {
    (0..N_CORES)
        .filter(|&c| c != core && mask & (1 << c) != 0)
        .collect()
}

fn check_all(caches: &[Cache], tp: &TokenProtocol) {
    for b in 0..N_BLOCKS {
        assert!(
            tp.check_invariant(caches, BlockAddr::new(b)),
            "token invariant broken for block {b}"
        );
    }
    for (i, c) in caches.iter().enumerate() {
        for vm in 0..N_VMS {
            let id = VmId::new(vm as u16);
            let scan = c.lines().filter(|l| l.tag == LineTag::Vm(id)).count() as u64;
            assert_eq!(
                c.residence(id),
                scan,
                "residence counter of {id} on cache {i} diverged"
            );
        }
        let host_scan = c.lines().filter(|l| l.tag == LineTag::Host).count() as u64;
        assert_eq!(c.host_residence(), host_scan);
    }
}

/// A deterministic seeded storm of misses with adversarial destination
/// subsets: whatever subset of cores a (possibly broken) filter picks,
/// the engine must conserve tokens, keep a single owner, and keep the
/// residence counters exact. Eight seeds, 400 operations each, invariants
/// checked after every single operation.
#[test]
fn adversarial_destination_sets_preserve_invariants() {
    for seed in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(0xA11C_E5ED ^ seed);
        // A small cache so evictions actually happen.
        let mut caches = vec![Cache::new(CacheGeometry::new(4 * 2 * 64, 2), N_VMS); N_CORES];
        let mut tp = TokenProtocol::new(N_CORES as u32);

        for i in 0..400 {
            let core = rng.gen_range(0..N_CORES);
            let b = BlockAddr::new(rng.gen_range(0..N_BLOCKS));
            let mask: u8 = rng.gen();
            let include_memory = rng.gen_bool(0.5);
            let tag = LineTag::Vm(VmId::new((i % N_VMS) as u16));
            match rng.gen_range(0..3u32) {
                0 => {
                    // Read misses only make sense when the block is absent.
                    if caches[core].probe(b).is_none() {
                        let mode = if rng.gen_bool(0.5) {
                            ReadMode::CleanShared
                        } else {
                            ReadMode::Strict
                        };
                        let dests = dests_from_mask(core, mask);
                        let _ =
                            tp.read_miss(&mut caches, core, &dests, b, include_memory, tag, mode);
                    }
                }
                1 => {
                    let writable = caches[core]
                        .probe(b)
                        .is_some_and(|l| l.state.can_write(N_CORES as u32));
                    if !writable {
                        let dests = dests_from_mask(core, mask);
                        let _ = tp.write_miss(&mut caches, core, &dests, b, include_memory, tag);
                    }
                }
                _ => {
                    let writable = caches[core]
                        .probe(b)
                        .is_some_and(|l| l.state.can_write(N_CORES as u32));
                    if !writable {
                        let dests: Vec<usize> = (0..N_CORES).filter(|&c| c != core).collect();
                        let w = tp.write_miss(&mut caches, core, &dests, b, true, tag);
                        assert!(w.success, "broadcast write must always succeed");
                    }
                }
            }
            check_all(&caches, &tp);
        }
    }
}

/// The safe-retry property in isolation: partial-destination transients
/// are allowed to fail (tokens bounce to memory), but a subsequent full
/// broadcast including memory must *always* succeed, from any state the
/// failed transients can have left behind.
#[test]
fn broadcast_recovers_after_failed_transient_storm() {
    let mut rng = SmallRng::seed_from_u64(0xB0C3);
    let mut caches = vec![Cache::new(CacheGeometry::new(16 * 4 * 64, 4), N_VMS); N_CORES];
    let mut tp = TokenProtocol::new(N_CORES as u32);
    let tag = LineTag::Vm(VmId::new(0));

    for round in 0..64 {
        let b = BlockAddr::new(round % N_BLOCKS);
        // Storm of transients with adversarial (often empty, often
        // memory-less) destination sets — many of these fail.
        for _ in 0..4 {
            let core = rng.gen_range(0..N_CORES);
            let dests = dests_from_mask(core, rng.gen::<u8>());
            let include_memory = rng.gen_bool(0.25);
            if rng.gen_bool(0.5) {
                let _ = tp.write_miss(&mut caches, core, &dests, b, include_memory, tag);
            } else if caches[core].probe(b).is_none() {
                let _ = tp.read_miss(
                    &mut caches,
                    core,
                    &dests,
                    b,
                    include_memory,
                    tag,
                    ReadMode::Strict,
                );
            }
            check_all(&caches, &tp);
        }
        // Escalation: the broadcast-with-memory retry must succeed.
        let core = rng.gen_range(0..N_CORES);
        let dests: Vec<usize> = (0..N_CORES).filter(|&c| c != core).collect();
        let writable = caches[core]
            .probe(b)
            .is_some_and(|l| l.state.can_write(N_CORES as u32));
        if !writable {
            let w = tp.write_miss(&mut caches, core, &dests, b, true, tag);
            assert!(
                w.success,
                "escalated broadcast must succeed after failed transients (round {round})"
            );
        }
        check_all(&caches, &tp);
    }
}

/// Randomized property-based variants of the deterministic tests above
/// (vendored generation-only proptest shim; no shrinking).
#[cfg(feature = "proptest")]
mod randomized {
    use super::*;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        Read {
            core: usize,
            block: u64,
            dest_mask: u8,
            include_memory: bool,
            clean: bool,
        },
        Write {
            core: usize,
            block: u64,
            dest_mask: u8,
            include_memory: bool,
        },
        BroadcastWrite {
            core: usize,
            block: u64,
        },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (
                0..N_CORES,
                0..N_BLOCKS,
                any::<u8>(),
                any::<bool>(),
                any::<bool>()
            )
                .prop_map(|(core, block, dest_mask, include_memory, clean)| Op::Read {
                    core,
                    block,
                    dest_mask,
                    include_memory,
                    clean
                }),
            (0..N_CORES, 0..N_BLOCKS, any::<u8>(), any::<bool>()).prop_map(
                |(core, block, dest_mask, include_memory)| Op::Write {
                    core,
                    block,
                    dest_mask,
                    include_memory
                }
            ),
            (0..N_CORES, 0..N_BLOCKS).prop_map(|(core, block)| Op::BroadcastWrite { core, block }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn protocol_preserves_invariants(ops in prop::collection::vec(op_strategy(), 1..200)) {
            // A small cache so evictions actually happen.
            let mut caches = vec![Cache::new(CacheGeometry::new(4 * 2 * 64, 2), N_VMS); N_CORES];
            let mut tp = TokenProtocol::new(N_CORES as u32);

            for (i, op) in ops.iter().enumerate() {
                let tag = LineTag::Vm(VmId::new((i % N_VMS) as u16));
                match *op {
                    Op::Read { core, block, dest_mask, include_memory, clean } => {
                        let b = BlockAddr::new(block);
                        let mode = if clean { ReadMode::CleanShared } else { ReadMode::Strict };
                        // Read misses only make sense when the block is absent.
                        if caches[core].probe(b).is_none() {
                            let dests = dests_from_mask(core, dest_mask);
                            let _ = tp.read_miss(&mut caches, core, &dests, b, include_memory, tag, mode);
                        }
                    }
                    Op::Write { core, block, dest_mask, include_memory } => {
                        let b = BlockAddr::new(block);
                        let writable = caches[core]
                            .probe(b)
                            .is_some_and(|l| l.state.can_write(N_CORES as u32));
                        if !writable {
                            let dests = dests_from_mask(core, dest_mask);
                            let _ = tp.write_miss(&mut caches, core, &dests, b, include_memory, tag);
                        }
                    }
                    Op::BroadcastWrite { core, block } => {
                        let b = BlockAddr::new(block);
                        let writable = caches[core]
                            .probe(b)
                            .is_some_and(|l| l.state.can_write(N_CORES as u32));
                        if !writable {
                            let dests: Vec<usize> = (0..N_CORES).filter(|&c| c != core).collect();
                            let w = tp.write_miss(&mut caches, core, &dests, b, true, tag);
                            prop_assert!(w.success, "broadcast write must always succeed");
                        }
                    }
                }
                check_all(&caches, &tp);
            }
        }

        #[test]
        fn broadcast_read_always_succeeds(
            writes in prop::collection::vec((0..N_CORES, 0..N_BLOCKS), 0..40),
            reader in 0..N_CORES,
            block in 0..N_BLOCKS,
        ) {
            let mut caches = vec![Cache::new(CacheGeometry::new(16 * 4 * 64, 4), N_VMS); N_CORES];
            let mut tp = TokenProtocol::new(N_CORES as u32);
            let tag = LineTag::Vm(VmId::new(0));
            for (core, b) in writes {
                let b = BlockAddr::new(b);
                let dests: Vec<usize> = (0..N_CORES).filter(|&c| c != core).collect();
                let writable = caches[core]
                    .probe(b)
                    .is_some_and(|l| l.state.can_write(N_CORES as u32));
                if !writable {
                    let _ = tp.write_miss(&mut caches, core, &dests, b, true, tag);
                }
            }
            let b = BlockAddr::new(block);
            if caches[reader].probe(b).is_none() {
                let dests: Vec<usize> = (0..N_CORES).filter(|&c| c != reader).collect();
                let r = tp.read_miss(&mut caches, reader, &dests, b, true, tag, ReadMode::Strict);
                prop_assert!(r.success, "broadcast read must always succeed");
            }
        }
    }
}

//! Gated behind the `proptest` feature: run with `cargo test --features proptest`.
#![cfg(feature = "proptest")]

//! Property-based tests of [`TrafficStats`] sharding: the parallel
//! engine records each shard's traffic into a private `TrafficStats`
//! lens and folds the lenses back with [`TrafficStats::merge`], so a
//! sharded accumulation must equal serial accumulation of the same
//! message sequence — counters and overflow flag alike — for *any*
//! assignment of messages to shards.

use proptest::prelude::*;
use sim_net::{MessageKind, TrafficStats};

fn kind(i: u8) -> MessageKind {
    MessageKind::ALL[i as usize % MessageKind::ALL.len()]
}

proptest! {
    #[test]
    fn shard_merged_stats_equal_serial(
        msgs in prop::collection::vec((any::<u8>(), 0u32..64, any::<u8>()), 0..300),
        n_shards in 1usize..9,
    ) {
        let mut serial = TrafficStats::default();
        let mut shards = vec![TrafficStats::default(); n_shards];
        for &(k, hops, shard) in &msgs {
            serial.record(kind(k), hops);
            shards[shard as usize % n_shards].record(kind(k), hops);
        }
        let mut merged = TrafficStats::default();
        for s in &shards {
            merged.merge(s);
        }
        prop_assert_eq!(merged, serial);
        prop_assert!(!merged.overflowed());
    }

    #[test]
    fn shard_merge_batches_equal_serial_batches(
        batches in prop::collection::vec(
            (any::<u8>(), 0u64..10_000, 0u64..50, any::<u8>()),
            0..200,
        ),
        n_shards in 1usize..9,
    ) {
        let mut serial = TrafficStats::default();
        let mut shards = vec![TrafficStats::default(); n_shards];
        for &(k, total_hops, messages, shard) in &batches {
            serial.record_batch(kind(k), total_hops, messages);
            shards[shard as usize % n_shards].record_batch(kind(k), total_hops, messages);
        }
        let mut merged = TrafficStats::default();
        for s in &shards {
            merged.merge(s);
        }
        prop_assert_eq!(merged, serial);
    }

    #[test]
    fn merge_saturates_and_flags_like_serial_accumulation(
        pre in any::<u64>(),
        k in any::<u8>(),
    ) {
        // Drive one shard near the ceiling, then merge a second: the sum
        // must saturate (never wrap) and latch the overflow flag exactly
        // when serial accumulation of the same records would.
        let mut a = TrafficStats::default();
        a.record_batch(kind(k), pre, 1);
        let mut b = TrafficStats::default();
        b.record_batch(kind(k), u64::MAX / 8, 1);

        let mut serial = TrafficStats::default();
        serial.record_batch(kind(k), pre, 1);
        serial.record_batch(kind(k), u64::MAX / 8, 1);

        a.merge(&b);
        prop_assert_eq!(a.byte_links(), serial.byte_links());
        prop_assert_eq!(a.overflowed(), serial.overflowed());
        prop_assert!(a.byte_links() >= std::cmp::max(b.byte_links(), 1) - 1);
    }
}

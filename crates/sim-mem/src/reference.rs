//! The frozen pre-optimization TokenB engine, kept as a differential
//! oracle.
//!
//! This is a verbatim copy of the protocol engine as it stood before the
//! hot path went allocation-free: `HashMap` token ledger, `Vec`-building
//! transaction outcomes, per-destination slice iteration. It exists so
//! the optimized engine in [`crate::protocol`] can be checked against it
//! — the differential tests drive both over identical transaction
//! sequences and require bit-identical outcomes, ledger contents, and
//! cache states. **Do not optimize this module**; its value is that it
//! stays the simple, obviously-faithful implementation.

use std::collections::HashMap;

use crate::addr::BlockAddr;
use crate::cache::Cache;
use crate::line::{CacheLine, LineTag, TokenState};
use crate::protocol::{DataSource, ReadMode, ReadResult, TokenLedger, WriteResult};

/// Tokens held by the memory controller, per block (reference copy).
#[derive(Clone, Debug)]
struct ReferenceMemory {
    total: u32,
    entries: HashMap<BlockAddr, MemEntry>,
}

#[derive(Clone, Copy, Debug)]
struct MemEntry {
    tokens: u32,
    owner: bool,
}

impl ReferenceMemory {
    fn new(total: u32) -> Self {
        assert!(total > 0, "token count must be positive");
        ReferenceMemory {
            total,
            entries: HashMap::new(),
        }
    }

    fn entry(&self, block: BlockAddr) -> MemEntry {
        self.entries.get(&block).copied().unwrap_or(MemEntry {
            tokens: self.total,
            owner: true,
        })
    }

    fn total(&self) -> u32 {
        self.total
    }

    fn tokens(&self, block: BlockAddr) -> u32 {
        self.entry(block).tokens
    }

    fn has_owner(&self, block: BlockAddr) -> bool {
        self.entry(block).owner
    }

    fn entries(&self) -> impl Iterator<Item = (BlockAddr, u32, bool)> + '_ {
        self.entries
            .iter()
            .filter(|(_, e)| !(e.tokens == self.total && e.owner))
            .map(|(&b, e)| (b, e.tokens, e.owner))
    }

    fn take(&mut self, block: BlockAddr, n: u32) -> (u32, bool) {
        let e = self.entry(block);
        let taken = e.tokens.min(n);
        let owner_taken = e.owner && taken == e.tokens && taken > 0;
        self.entries.insert(
            block,
            MemEntry {
                tokens: e.tokens - taken,
                owner: e.owner && !owner_taken,
            },
        );
        (taken, owner_taken)
    }

    fn put(&mut self, block: BlockAddr, n: u32, owner: bool) {
        let e = self.entry(block);
        debug_assert!(e.tokens + n <= self.total, "token overflow at memory");
        debug_assert!(!(e.owner && owner), "duplicate owner token at memory");
        self.entries.insert(
            block,
            MemEntry {
                tokens: e.tokens + n,
                owner: e.owner || owner,
            },
        );
    }
}

/// The pre-optimization token-coherence engine, API-compatible with the
/// slice-based surface of [`crate::TokenProtocol`].
///
/// # Examples
///
/// ```
/// use sim_mem::{ReferenceProtocol, Cache, CacheGeometry, BlockAddr, LineTag, ReadMode};
/// use sim_vm::VmId;
///
/// let mut caches = vec![Cache::new(CacheGeometry::new(4096, 2), 2); 4];
/// let mut tp = ReferenceProtocol::new(4);
/// let b = BlockAddr::new(10);
/// let r = tp.read_miss(&mut caches, 0, &[1, 2, 3], b, true, LineTag::Vm(VmId::new(0)),
///                      ReadMode::Strict);
/// assert!(r.success);
/// ```
#[derive(Clone, Debug)]
pub struct ReferenceProtocol {
    memory: ReferenceMemory,
}

impl ReferenceProtocol {
    /// Creates a reference engine with `total` tokens per block.
    pub fn new(total: u32) -> Self {
        ReferenceProtocol {
            memory: ReferenceMemory::new(total),
        }
    }

    /// Tokens per block.
    pub fn total_tokens(&self) -> u32 {
        self.memory.total()
    }

    /// Tokens currently at memory for `block`.
    pub fn memory_tokens(&self, block: BlockAddr) -> u32 {
        self.memory.tokens(block)
    }

    /// Whether memory holds the owner token for `block`.
    pub fn memory_has_owner(&self, block: BlockAddr) -> bool {
        self.memory.has_owner(block)
    }

    /// The memory-side token ledger: every block not in the reset state.
    /// Iteration order is unspecified; sort before comparing.
    pub fn memory_entries(&self) -> impl Iterator<Item = (BlockAddr, u32, bool)> + '_ {
        self.memory.entries()
    }

    /// Executes a read-miss (GETS) attempt — the pre-optimization
    /// implementation, preserved verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `dests` contains the requester, or if the requester
    /// already holds a valid line for `block`.
    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    pub fn read_miss(
        &mut self,
        caches: &mut [Cache],
        requester: usize,
        dests: &[usize],
        block: BlockAddr,
        include_memory: bool,
        tag: LineTag,
        mode: ReadMode,
    ) -> ReadResult {
        assert!(
            !dests.contains(&requester),
            "requester must not snoop itself"
        );
        assert!(
            caches[requester].probe(block).is_none(),
            "read_miss on a block the requester already caches"
        );
        let snooped = dests.len();
        let mut invalidated = Vec::new();

        let owner_at = dests
            .iter()
            .copied()
            .find(|&c| caches[c].probe(block).is_some_and(|l| l.state.owner));
        let holder_at = owner_at.or_else(|| {
            if mode != ReadMode::CleanShared {
                return None;
            }
            dests
                .iter()
                .copied()
                .find(|&c| caches[c].probe(block).is_some_and(|l| l.state.tokens > 0))
        });

        let (fill, source) = if let Some(c) = holder_at {
            let line = caches[c].probe_mut(block).expect("holder has line");
            if line.state.tokens > 1 {
                line.state.tokens -= 1;
                (TokenState::shared_one(), DataSource::Cache(c))
            } else {
                let line = caches[c].remove(block).expect("line present");
                invalidated.push(c);
                (line.state, DataSource::Cache(c))
            }
        } else if include_memory && mode == ReadMode::Strict && self.memory.has_owner(block) {
            let (taken, owner_taken) = self.memory.take(block, self.memory.total());
            debug_assert!(taken >= 1 && owner_taken);
            (
                TokenState {
                    tokens: taken,
                    owner: true,
                    dirty: false,
                },
                DataSource::Memory,
            )
        } else if include_memory && mode == ReadMode::CleanShared && self.memory.tokens(block) > 0 {
            let (taken, owner_taken) = self.memory.take(block, 1);
            debug_assert_eq!(taken, 1);
            (
                TokenState {
                    tokens: 1,
                    owner: owner_taken,
                    dirty: false,
                },
                DataSource::Memory,
            )
        } else {
            return ReadResult {
                success: false,
                source: None,
                invalidated,
                evicted: None,
                evicted_dirty: false,
                snooped,
            };
        };

        let (evicted, evicted_dirty) =
            self.fill(caches, requester, CacheLine::new(block, fill, tag));
        ReadResult {
            success: true,
            source: Some(source),
            invalidated,
            evicted,
            evicted_dirty,
            snooped,
        }
    }

    /// Executes a write-miss / upgrade (GETX) attempt — the
    /// pre-optimization implementation, preserved verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `dests` contains the requester.
    pub fn write_miss(
        &mut self,
        caches: &mut [Cache],
        requester: usize,
        dests: &[usize],
        block: BlockAddr,
        include_memory: bool,
        tag: LineTag,
    ) -> WriteResult {
        assert!(
            !dests.contains(&requester),
            "requester must not snoop itself"
        );
        let total = self.total_tokens();
        let snooped = dests.len();
        let existing = caches[requester].probe(block).map(|l| l.state);
        let have = existing.map_or(0, |s| s.tokens);
        let had_data = existing.is_some();

        let mut gained = 0u32;
        let mut collected_owner = false;
        let mut source: Option<DataSource> = None;
        let mut token_repliers = Vec::new();
        let mut invalidated = Vec::new();

        for &c in dests {
            let Some(line) = caches[c].remove(block) else {
                continue;
            };
            gained += line.state.tokens;
            invalidated.push(c);
            if line.state.owner {
                collected_owner = true;
                if !had_data {
                    source = Some(DataSource::Cache(c));
                } else {
                    token_repliers.push(c);
                }
            } else {
                token_repliers.push(c);
            }
        }
        if include_memory {
            let mem_had_owner = self.memory.has_owner(block);
            let (from_mem, owner_taken) = self.memory.take(block, total);
            collected_owner |= owner_taken;
            if from_mem > 0 && mem_had_owner && source.is_none() && !had_data {
                source = Some(DataSource::Memory);
            }
            gained += from_mem;
        }

        if have + gained == total {
            debug_assert!(
                collected_owner || existing.is_some_and(|s| s.owner),
                "all tokens collected must include the owner token"
            );
            caches[requester].remove(block);
            let (evicted, evicted_dirty) = self.fill(
                caches,
                requester,
                CacheLine::new(block, TokenState::modified(total), tag),
            );
            WriteResult {
                success: true,
                source,
                token_repliers,
                invalidated,
                evicted,
                evicted_dirty,
                snooped,
                bounced: false,
            }
        } else {
            self.memory.put(block, gained, collected_owner);
            WriteResult {
                success: false,
                source: None,
                token_repliers,
                invalidated,
                evicted: None,
                evicted_dirty: false,
                snooped,
                bounced: gained > 0,
            }
        }
    }

    /// Evicts `line`: its tokens return to memory. Returns `true` on a
    /// dirty write-back.
    pub fn writeback(&mut self, line: &CacheLine) -> bool {
        self.memory
            .put(line.block, line.state.tokens, line.state.owner);
        line.state.owner && line.state.dirty
    }

    /// Verifies token conservation for `block`.
    pub fn check_invariant(&self, caches: &[Cache], block: BlockAddr) -> bool {
        let cached: u32 = caches
            .iter()
            .filter_map(|c| c.probe(block))
            .map(|l| l.state.tokens)
            .sum();
        let cache_owners = caches
            .iter()
            .filter_map(|c| c.probe(block))
            .filter(|l| l.state.owner)
            .count();
        let owners = cache_owners + usize::from(self.memory.has_owner(block));
        cached + self.memory.tokens(block) == self.total_tokens() && owners == 1
    }

    fn fill(
        &mut self,
        caches: &mut [Cache],
        requester: usize,
        line: CacheLine,
    ) -> (Option<CacheLine>, bool) {
        match caches[requester].insert(line) {
            Some(victim) => {
                let dirty = self.writeback(&victim);
                (Some(victim), dirty)
            }
            None => (None, false),
        }
    }
}

impl TokenLedger for ReferenceProtocol {
    fn total_tokens(&self) -> u32 {
        ReferenceProtocol::total_tokens(self)
    }

    fn memory_tokens(&self, block: BlockAddr) -> u32 {
        ReferenceProtocol::memory_tokens(self, block)
    }

    fn memory_has_owner(&self, block: BlockAddr) -> bool {
        ReferenceProtocol::memory_has_owner(self, block)
    }

    fn memory_entries_sorted(&self) -> Vec<(BlockAddr, u32, bool)> {
        let mut v: Vec<_> = self.memory_entries().collect();
        v.sort_unstable_by_key(|&(b, _, _)| b);
        v
    }
}

//! The vCPU map register (Section IV-A).
//!
//! "To identify the physical cores to which the virtual CPUs of a VM are
//! mapped, each core has a register, called vCPU map register. The vCPU
//! map register, an n-bit vector for n cores, represents the physical
//! cores used by the current VM running on a core." All cores running a VM
//! hold the same value, synchronized by the hypervisor before control
//! transfers; this model keeps one logical register per VM plus an update
//! count standing in for the synchronization messages.

use sim_vm::CoreId;

/// An n-bit core vector: the snoop domain of one VM.
///
/// # Examples
///
/// ```
/// use vsnoop::VcpuMap;
/// use sim_vm::CoreId;
///
/// let mut map = VcpuMap::default();
/// map.insert(CoreId::new(0));
/// map.insert(CoreId::new(5));
/// assert!(map.contains(CoreId::new(5)));
/// assert_eq!(map.len(), 2);
/// assert_eq!(map.cores().collect::<Vec<_>>(), vec![CoreId::new(0), CoreId::new(5)]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct VcpuMap(u64);

impl VcpuMap {
    /// Creates a map from a raw bit mask (bit *i* = core *i*).
    pub const fn from_mask(mask: u64) -> Self {
        VcpuMap(mask)
    }

    /// Returns the raw bit mask.
    pub const fn mask(self) -> u64 {
        self.0
    }

    /// Adds a core; returns `true` if it was newly added.
    pub fn insert(&mut self, core: CoreId) -> bool {
        let bit = 1u64 << core.index();
        let newly = self.0 & bit == 0;
        self.0 |= bit;
        newly
    }

    /// Removes a core; returns `true` if it was present.
    pub fn remove(&mut self, core: CoreId) -> bool {
        let bit = 1u64 << core.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether `core` is in the snoop domain.
    pub const fn contains(self, core: CoreId) -> bool {
        self.0 & (1 << core.index()) != 0
    }

    /// Number of cores in the domain.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the domain is empty.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union with another map (used by the friend-VM scheme).
    pub const fn union(self, other: VcpuMap) -> VcpuMap {
        VcpuMap(self.0 | other.0)
    }

    /// Iterates over the cores in the domain, in index order.
    pub fn cores(self) -> impl Iterator<Item = CoreId> {
        (0..64u16)
            .filter(move |&i| self.0 & (1 << i) != 0)
            .map(CoreId::new)
    }
}

impl FromIterator<CoreId> for VcpuMap {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut m = VcpuMap::default();
        for c in iter {
            m.insert(c);
        }
        m
    }
}

/// The per-VM vCPU map file, with synchronization accounting.
///
/// Real hardware replicates each VM's map into a register on every core the
/// VM uses; the hypervisor updates all replicas before transferring
/// control. This model stores one logical map per VM and counts the update
/// broadcasts so experiments can charge their (negligible) cost.
#[derive(Clone, Debug)]
pub struct VcpuMapFile {
    maps: Vec<VcpuMap>,
    sync_updates: u64,
}

impl VcpuMapFile {
    /// Creates a map file for `n_vms` VMs, all maps empty.
    pub fn new(n_vms: usize) -> Self {
        VcpuMapFile {
            maps: vec![VcpuMap::default(); n_vms],
            sync_updates: 0,
        }
    }

    /// Returns the snoop domain of VM `vm`.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is out of range.
    pub fn map(&self, vm: usize) -> VcpuMap {
        self.maps[vm]
    }

    /// Replaces VM `vm`'s map wholesale (initial placement).
    pub fn set(&mut self, vm: usize, map: VcpuMap) {
        self.maps[vm] = map;
        self.sync_updates += 1;
    }

    /// Adds `core` to VM `vm`'s domain, counting a synchronization round
    /// if the map changed. Returns `true` if it changed.
    pub fn add_core(&mut self, vm: usize, core: CoreId) -> bool {
        let changed = self.maps[vm].insert(core);
        if changed {
            self.sync_updates += 1;
        }
        changed
    }

    /// Removes `core` from VM `vm`'s domain, counting a synchronization
    /// round if the map changed. Returns `true` if it changed.
    pub fn remove_core(&mut self, vm: usize, core: CoreId) -> bool {
        let changed = self.maps[vm].remove(core);
        if changed {
            self.sync_updates += 1;
        }
        changed
    }

    /// Overwrites VM `vm`'s map **without** counting a synchronization
    /// round: this models hardware corruption of the register (fault
    /// injection), not a hypervisor update. Returns the previous value.
    pub fn corrupt(&mut self, vm: usize, map: VcpuMap) -> VcpuMap {
        std::mem::replace(&mut self.maps[vm], map)
    }

    /// Number of synchronization rounds performed.
    pub fn sync_updates(&self) -> u64 {
        self.sync_updates
    }

    /// Number of VMs tracked.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// Whether the file tracks no VMs.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut m = VcpuMap::default();
        assert!(m.is_empty());
        assert!(m.insert(CoreId::new(3)));
        assert!(!m.insert(CoreId::new(3)), "double insert is not new");
        assert!(m.contains(CoreId::new(3)));
        assert!(m.remove(CoreId::new(3)));
        assert!(!m.remove(CoreId::new(3)));
        assert!(m.is_empty());
    }

    #[test]
    fn mask_roundtrip_and_union() {
        let a = VcpuMap::from_mask(0b1010);
        let b = VcpuMap::from_mask(0b0110);
        assert_eq!(a.union(b).mask(), 0b1110);
        assert_eq!(a.len(), 2);
        let collected: VcpuMap = a.cores().collect();
        assert_eq!(collected, a);
    }

    #[test]
    fn cores_iterates_in_order() {
        let m = VcpuMap::from_mask(0b100101);
        let v: Vec<usize> = m.cores().map(|c| c.index()).collect();
        assert_eq!(v, vec![0, 2, 5]);
    }

    #[test]
    fn corrupt_bypasses_sync_accounting() {
        let mut f = VcpuMapFile::new(1);
        f.set(0, VcpuMap::from_mask(0b11));
        let before = f.sync_updates();
        let old = f.corrupt(0, VcpuMap::from_mask(u64::MAX));
        assert_eq!(old.mask(), 0b11);
        assert_eq!(f.map(0).mask(), u64::MAX);
        assert_eq!(f.sync_updates(), before, "corruption is not a sync");
    }

    #[test]
    fn map_file_counts_syncs() {
        let mut f = VcpuMapFile::new(2);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
        assert!(f.add_core(0, CoreId::new(1)));
        assert!(!f.add_core(0, CoreId::new(1)), "no-op add is free");
        assert!(f.remove_core(0, CoreId::new(1)));
        assert!(!f.remove_core(0, CoreId::new(1)));
        assert_eq!(f.sync_updates(), 2);
        f.set(1, VcpuMap::from_mask(0xF0));
        assert_eq!(f.sync_updates(), 3);
        assert_eq!(f.map(1).len(), 4);
    }
}

//! The experiment campaign: every paper artifact as a supervised job.
//!
//! Job order is the paper's presentation order (what the old serial
//! `all` binary ran); the merged campaign output concatenates the jobs'
//! canonical report text in this order, so a fault-free supervised run
//! is byte-identical to the historical serial run.
//!
//! The `inject_*` options exist for the campaign's own robustness
//! smoke tests (and `scripts/verify.sh`): they wrap the named jobs with
//! a deterministic panic, a cooperative hang, or a fails-then-succeeds
//! flake, exercising panic isolation, the watchdog, and the retry path
//! against the real job registry rather than synthetic fixtures.

use vsnoop::experiments::RunScale;
use vsnoop::runner::{json::Value, CrashReproducer, Job, JobCtx};

use crate::reports;

/// One report generator: takes the campaign scale, returns canonical
/// report text.
pub type ReportFn = fn(RunScale) -> Result<String, String>;

/// `(name, generator, uses_scale, migration)` — `uses_scale` marks jobs
/// whose work actually depends on the run scale (for the step window);
/// `migration` marks jobs running at the x16 migration scale.
const ARTIFACTS: &[(&str, ReportFn, bool, bool)] = &[
    ("fig1", reports::fig1, true, false),
    ("fig2", reports::fig2, false, false),
    ("fig2_validation", reports::fig2_validation, true, false),
    ("fig3", reports::fig3, false, false),
    ("table1", reports::table1, false, false),
    ("table2", reports::table2, false, false),
    ("table3", reports::table3, false, false),
    ("table4", reports::table4, true, false),
    ("fig6", reports::fig6, true, false),
    ("fig7", reports::fig7, true, true),
    ("fig8", reports::fig8, true, true),
    ("fig9", reports::fig9, true, true),
    ("table5", reports::table5, true, false),
    ("fig10", reports::fig10, true, false),
    ("table6", reports::table6, true, false),
];

/// Campaign-assembly options.
#[derive(Clone, Debug, Default)]
pub struct CampaignOptions {
    /// Restrict to these job names (empty = all), preserving campaign
    /// order.
    pub only: Vec<String>,
    /// Self-test: named jobs panic deterministically.
    pub inject_panic: Vec<String>,
    /// Self-test: named jobs hang (polling their token) until cancelled.
    pub inject_hang: Vec<String>,
    /// Self-test: named jobs fail on attempt 1 and succeed from
    /// attempt 2.
    pub inject_flaky: Vec<String>,
}

/// Every artifact name, in campaign order.
pub fn artifact_names() -> Vec<&'static str> {
    ARTIFACTS.iter().map(|a| a.0).collect()
}

fn spec_params(scale: RunScale, inject: Option<&str>) -> Value {
    let mut pairs = vec![
        ("warmup", Value::UInt(scale.warmup_rounds)),
        ("measure", Value::UInt(scale.measure_rounds)),
        ("scale_seed", Value::UInt(scale.seed)),
    ];
    // Injections are part of the job's identity: a reproducer written for
    // an injected failure must replay the injection, not the clean job.
    if let Some(kind) = inject {
        pairs.push(("inject", Value::Str(kind.to_string())));
    }
    Value::obj(pairs)
}

fn build_job(
    name: &'static str,
    run: ReportFn,
    uses_scale: bool,
    migration: bool,
    scale: RunScale,
    opts: &CampaignOptions,
) -> Job {
    let inject_panic = opts.inject_panic.iter().any(|n| n == name);
    let inject_hang = opts.inject_hang.iter().any(|n| n == name);
    let inject_flaky = opts.inject_flaky.iter().any(|n| n == name);
    let inject = if inject_panic {
        Some("panic")
    } else if inject_hang {
        Some("hang")
    } else if inject_flaky {
        Some("flaky")
    } else {
        None
    };
    let params = spec_params(scale, inject);
    let job = Job::new(name, scale.seed, params, move |ctx: &JobCtx| {
        if inject_panic {
            panic!("injected panic (campaign self-test)");
        }
        if inject_hang {
            loop {
                ctx.checkpoint();
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
        if inject_flaky && ctx.attempt == 1 {
            return Err("injected flake (campaign self-test, attempt 1)".into());
        }
        run(scale)
    });
    if uses_scale {
        let effective = if migration {
            scale.for_migration()
        } else {
            scale
        };
        job.with_step_window(
            effective.warmup_rounds,
            effective.warmup_rounds + effective.measure_rounds,
        )
    } else {
        job
    }
}

/// Builds the campaign's job list for `scale`, honoring `opts`.
///
/// # Errors
///
/// Returns the offending name if `opts.only` or an injection list names
/// an unknown artifact (the message lists valid names).
pub fn campaign_jobs(scale: RunScale, opts: &CampaignOptions) -> Result<Vec<Job>, String> {
    for list in [
        &opts.only,
        &opts.inject_panic,
        &opts.inject_hang,
        &opts.inject_flaky,
    ] {
        for n in list {
            if !ARTIFACTS.iter().any(|a| a.0 == n) {
                return Err(format!(
                    "unknown artifact \"{n}\" (available: {})",
                    artifact_names().join(", ")
                ));
            }
        }
    }
    Ok(ARTIFACTS
        .iter()
        .filter(|(name, ..)| opts.only.is_empty() || opts.only.iter().any(|n| n == name))
        .map(|&(name, run, uses_scale, migration)| {
            build_job(name, run, uses_scale, migration, scale, opts)
        })
        .collect())
}

/// Rebuilds the single job a crash reproducer describes, at the scale
/// recorded in the reproducer (falling back to `fallback_scale` for any
/// missing field).
///
/// # Errors
///
/// Returns a message if the reproducer names an unknown artifact.
pub fn job_from_repro(repro: &CrashReproducer, fallback_scale: RunScale) -> Result<Job, String> {
    let p = &repro.spec.params;
    let scale = RunScale {
        warmup_rounds: p
            .get("warmup")
            .and_then(Value::as_u64)
            .unwrap_or(fallback_scale.warmup_rounds),
        measure_rounds: p
            .get("measure")
            .and_then(Value::as_u64)
            .unwrap_or(fallback_scale.measure_rounds),
        seed: p
            .get("scale_seed")
            .and_then(Value::as_u64)
            .unwrap_or(repro.spec.seed),
    };
    let mut opts = CampaignOptions {
        only: vec![repro.spec.name.clone()],
        ..Default::default()
    };
    match p.get("inject").and_then(Value::as_str) {
        Some("panic") => opts.inject_panic.push(repro.spec.name.clone()),
        Some("hang") => opts.inject_hang.push(repro.spec.name.clone()),
        Some("flaky") => opts.inject_flaky.push(repro.spec.name.clone()),
        _ => {}
    }
    let mut jobs = campaign_jobs(scale, &opts)?;
    if jobs.is_empty() {
        return Err(format!(
            "reproducer names unknown artifact \"{}\" (available: {})",
            repro.spec.name,
            artifact_names().join(", ")
        ));
    }
    Ok(jobs.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunScale {
        RunScale {
            warmup_rounds: 10,
            measure_rounds: 10,
            seed: 7,
        }
    }

    #[test]
    fn campaign_order_matches_the_paper() {
        let names = artifact_names();
        assert_eq!(names.len(), 15);
        assert_eq!(names[0], "fig1");
        assert_eq!(names[14], "table6");
        let jobs = campaign_jobs(quick(), &CampaignOptions::default()).unwrap();
        assert_eq!(jobs.len(), 15);
        assert!(jobs.iter().zip(names).all(|(j, n)| j.spec.name == n));
    }

    #[test]
    fn only_filters_and_validates() {
        let opts = CampaignOptions {
            only: vec!["table2".into(), "fig2".into()],
            ..Default::default()
        };
        let jobs = campaign_jobs(quick(), &opts).unwrap();
        let names: Vec<_> = jobs.iter().map(|j| j.spec.name.as_str()).collect();
        assert_eq!(names, ["fig2", "table2"], "campaign order preserved");

        let bad = CampaignOptions {
            only: vec!["fig99".into()],
            ..Default::default()
        };
        let err = campaign_jobs(quick(), &bad).unwrap_err();
        assert!(err.contains("fig99") && err.contains("fig1"), "{err}");
    }

    #[test]
    fn step_windows_cover_warmup_plus_measure() {
        let jobs = campaign_jobs(quick(), &CampaignOptions::default()).unwrap();
        let fig1 = jobs.iter().find(|j| j.spec.name == "fig1").unwrap();
        assert_eq!(fig1.spec.step_window, Some((10, 20)));
        let table2 = jobs.iter().find(|j| j.spec.name == "table2").unwrap();
        assert_eq!(table2.spec.step_window, None, "analytic job has no window");
        let fig7 = jobs.iter().find(|j| j.spec.name == "fig7").unwrap();
        let (start, end) = fig7.spec.step_window.unwrap();
        assert!(end - start > 20, "migration jobs run the x16 scale");
    }
}

//! Table III — application profiles (the synthetic stand-ins for the
//! paper's input sets).

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::table3(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("table3: {e}");
            std::process::exit(1);
        }
    }
}

//! Fig. 2 cross-validation: the closed-form projection vs. the simulator,
//! at 8 / 16 / 32 / 64 cores.

use vsnoop::experiments::fig2_validation;
use vsnoop_bench::{f1, heading, scale_from_env, TextTable};

fn main() {
    heading(
        "Figure 2 validation: analytic model vs measured simulation",
        "Pinned VMs of 4 vCPUs on 8..64 cores (ferret), with and without\n\
         hypervisor activity. The closed form the paper plots should match\n\
         what the simulator actually measures.",
    );
    let mut t = TextTable::new([
        "VMs",
        "cores",
        "host miss %",
        "measured reduction %",
        "analytic %",
        "gap pp",
    ]);
    for r in fig2_validation(scale_from_env()) {
        t.row([
            r.n_vms.to_string(),
            r.cores.to_string(),
            f1(r.host_miss_pct),
            f1(r.measured_pct),
            f1(r.analytic_pct),
            f1(r.gap_pp()),
        ]);
    }
    t.maybe_dump_csv("fig2_validation").expect("csv dump");
    println!("{t}");
}

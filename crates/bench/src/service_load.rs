//! Multi-tenant load harness for the simulation service.
//!
//! Starts an in-process server on a loopback port, drives it with many
//! concurrent client connections across several tenants, and reports
//! request-latency percentiles, shed counts and the process peak RSS.
//! Both the `loadtest` binary and the `service` bin of the `perf`
//! harness run this, so the perf gate measures exactly the scenario
//! the load test soaks.
//!
//! Each client thread pipelines all its submits up front and then
//! reads until every one has a terminal answer (`done` or `shed`), so
//! the server sees genuine concurrency and — with quotas sized below
//! the offered load — genuine overload. A request's latency is
//! submit-write to terminal-response; sheds are counted separately and
//! excluded from the latency distribution (they answer in
//! microseconds and would flatter the percentiles).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use vsnoop::obs::metrics::percentile;
use vsnoop::runner::json::Value;
use vsnoop::service::{serve, ChaosConfig, ChaosProxy, Response, ServiceConfig, TenantQuota};

use crate::service_jobs::registry_factory;

/// Load shape knobs.
#[derive(Clone, Copy, Debug)]
pub struct LoadOptions {
    /// Concurrent client connections.
    pub clients: usize,
    /// Distinct tenants the clients spread over (round-robin).
    pub tenants: usize,
    /// Submits each client pipelines.
    pub jobs_per_client: usize,
    /// Duration of the synthetic `spin` job each submit runs.
    pub spin_ms: u64,
    /// Server worker threads (concurrently running jobs).
    pub workers: usize,
    /// Global admission queue cap.
    pub queue_cap: usize,
    /// Per-tenant quota.
    pub quota: TenantQuota,
    /// Per-request deadline.
    pub deadline_ms: u64,
    /// Run the server with its write-ahead log (in a scratch state
    /// dir). On by default so the loadtest and the `service` perf bin
    /// both measure the service *with* its durability cost.
    pub wal: bool,
    /// Route every client through a fault-injecting [`ChaosProxy`]
    /// seeded here; clients switch to reconnect-and-retry submission
    /// keyed on idempotency keys. `None` connects directly.
    pub chaos_seed: Option<u64>,
    /// Per-connection pipelining cap handed to the server. Keep
    /// `jobs_per_client` at or under it unless the point is to
    /// observe `pipeline_full` sheds (clients pipeline every submit
    /// up front).
    pub pipeline_limit: usize,
    /// Progress-frame cadence handed to the server (`None` keeps the
    /// server default; `Some(0)` disables streaming).
    pub progress_ms: Option<u64>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            clients: 32,
            tenants: 4,
            jobs_per_client: 8,
            spin_ms: 2,
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            queue_cap: 128,
            quota: TenantQuota {
                max_inflight: 4,
                max_queued: 32,
                max_queued_bytes: 1 << 20,
            },
            deadline_ms: 10_000,
            wal: true,
            chaos_seed: None,
            pipeline_limit: 64,
            progress_ms: None,
        }
    }
}

/// What the soak observed.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Submits sent.
    pub requests: u64,
    /// Requests that finished `ok`.
    pub ok: u64,
    /// Typed sheds received, by reason (sorted by reason name).
    pub shed: Vec<(String, u64)>,
    /// Requests with a failed/timeout/cancelled outcome.
    pub failed: u64,
    /// Requests that never got a terminal answer (transport errors —
    /// must be 0 for a healthy run).
    pub unanswered: u64,
    /// Wall-clock of the whole soak.
    pub elapsed_s: f64,
    /// Completed (non-shed) request latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observed.
    pub max_ms: f64,
    /// Completed requests per second (ok + failed, excluding sheds).
    pub requests_per_sec: f64,
    /// `VmHWM` after the soak, bytes.
    pub peak_rss_bytes: u64,
    /// Client reconnects performed (chaos mode; 0 otherwise).
    pub reconnects: u64,
    /// Faults the chaos proxy injected (fragments + stalls + cuts +
    /// resets; 0 without chaos). A "chaos" soak that injected nothing
    /// proves nothing, so the caller should assert this is > 0.
    pub chaos_faults: u64,
    /// Mid-run `progress` frames the clients observed (result
    /// streaming; 0 when jobs finish inside one progress interval).
    pub progress_frames: u64,
    /// Server-measured end-to-end p50 from the `metrics` wire op,
    /// milliseconds (0.0 when the scrape failed). The server's
    /// histograms are process-global, so in a process running several
    /// soaks they accumulate across runs — informational, not gated.
    pub server_p50_ms: f64,
    /// Server-measured end-to-end p99 (bucket upper edge capped at the
    /// exact max, so it can read up to one power of two above the
    /// client-measured p99).
    pub server_p99_ms: f64,
}

impl LoadReport {
    /// Total sheds across reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().map(|(_, n)| n).sum()
    }
}

/// One client's observations: latencies of terminal non-shed answers,
/// shed reasons, and outcome counts.
#[derive(Default)]
struct ClientTally {
    latencies_ms: Vec<f64>,
    sheds: Vec<String>,
    ok: u64,
    failed: u64,
    unanswered: u64,
    reconnects: u64,
    progress: u64,
}

/// Runs one client: pipelines `jobs` submits, reads until all are
/// answered (or the connection dies).
fn run_client(
    addr: std::net::SocketAddr,
    tenant: String,
    jobs: usize,
    spin_ms: u64,
    deadline_ms: u64,
) -> ClientTally {
    let mut tally = ClientTally::default();
    let Ok(stream) = TcpStream::connect(addr) else {
        tally.unanswered = jobs as u64;
        return tally;
    };
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        tally.unanswered = jobs as u64;
        return tally;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);

    // tag -> submit instant; a request is outstanding until its tag
    // gets a terminal response.
    let mut outstanding: Vec<Option<Instant>> = vec![None; jobs];
    for (i, slot) in outstanding.iter_mut().enumerate() {
        let line = Value::obj([
            ("op", Value::Str("submit".into())),
            ("tenant", Value::Str(tenant.clone())),
            ("job", Value::Str("spin".into())),
            ("params", Value::obj([("ms", Value::UInt(spin_ms))])),
            ("deadline_ms", Value::UInt(deadline_ms)),
            ("tag", Value::Str(i.to_string())),
        ])
        .to_json();
        *slot = Some(Instant::now());
        if writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .is_err()
        {
            break;
        }
    }
    let _ = writer.flush();

    let mut pending = outstanding.iter().filter(|s| s.is_some()).count();
    tally.unanswered = (jobs - pending) as u64; // submits that failed to send
    let mut line = String::new();
    while pending > 0 {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let Ok(resp) = Response::parse(line.trim()) else {
            continue;
        };
        let (tag, terminal) = match &resp {
            Response::Accepted { tag, .. } => (tag.clone(), false),
            Response::Shed { tag, reason, .. } => {
                tally.sheds.push(reason.clone());
                (tag.clone(), true)
            }
            Response::Done { tag, outcome, .. } => {
                if outcome.is_ok() {
                    tally.ok += 1;
                } else {
                    tally.failed += 1;
                }
                (tag.clone(), true)
            }
            Response::Error { tag, .. } => {
                tally.failed += 1;
                (tag.clone(), true)
            }
            Response::Progress { .. } => {
                tally.progress += 1;
                (None, false)
            }
            _ => (None, false),
        };
        if !terminal {
            continue;
        }
        let Some(slot) = tag
            .and_then(|t| t.parse::<usize>().ok())
            .and_then(|i| outstanding.get_mut(i))
        else {
            continue;
        };
        if let Some(t0) = slot.take() {
            pending -= 1;
            // Sheds answer instantly; keeping them out of the latency
            // distribution stops overload from *improving* p99.
            if !matches!(resp, Response::Shed { .. }) {
                tally.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            }
        }
    }
    tally.unanswered += pending as u64;
    tally
}

/// Runs one client against a *hostile* link (the chaos proxy):
/// pipelines submits carrying idempotency keys, and on any transport
/// fault reconnects with exponential backoff + jitter and resubmits
/// every unsettled job under its original key. The server dedups, so
/// a job whose `accepted` (or `done`) was eaten by the proxy is
/// answered from the original run — never run twice.
fn run_client_chaos(
    addr: std::net::SocketAddr,
    tenant: String,
    jobs: usize,
    spin_ms: u64,
    deadline_ms: u64,
    nonce: u64,
) -> ClientTally {
    let mut tally = ClientTally::default();
    let mut settled: Vec<Option<bool>> = vec![None; jobs]; // Some(ok?)
    let mut started: Vec<Option<Instant>> = vec![None; jobs];
    let mut backoff_ms: u64 = 25;
    let max_attempts = 60;
    for attempt in 0..max_attempts {
        if settled.iter().all(Option::is_some) {
            break;
        }
        if attempt > 0 {
            tally.reconnects += 1;
            // Exponential backoff with deterministic per-client jitter.
            let jitter = (nonce ^ attempt) % (backoff_ms / 2 + 1);
            std::thread::sleep(Duration::from_millis(backoff_ms + jitter));
            backoff_ms = (backoff_ms * 2).min(500);
        }
        let Ok(stream) = TcpStream::connect(addr) else {
            continue;
        };
        let _ = stream.set_nodelay(true);
        // A read timeout bounds how long a swallowed response can
        // stall the client; timeout → reconnect and resubmit.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let Ok(mut writer) = stream.try_clone() else {
            continue;
        };
        let mut reader = BufReader::new(stream);
        let mut sent_ok = true;
        for i in 0..jobs {
            if settled[i].is_some() {
                continue;
            }
            if started[i].is_none() {
                started[i] = Some(Instant::now());
            }
            let line = Value::obj([
                ("op", Value::Str("submit".into())),
                ("tenant", Value::Str(tenant.clone())),
                ("job", Value::Str("spin".into())),
                ("params", Value::obj([("ms", Value::UInt(spin_ms))])),
                ("deadline_ms", Value::UInt(deadline_ms)),
                ("tag", Value::Str(i.to_string())),
                ("idem_key", Value::Str(format!("lt-{nonce}-{tenant}-{i}"))),
            ])
            .to_json();
            if writer
                .write_all(line.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .is_err()
            {
                sent_ok = false;
                break;
            }
        }
        if sent_ok {
            let _ = writer.flush();
        }
        let mut line = String::new();
        while settled.iter().any(Option::is_none) {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break, // transport fault: reconnect
                Ok(_) => {}
            }
            let Ok(resp) = Response::parse(line.trim()) else {
                continue; // a torn frame the proxy glued; ignore
            };
            // Terminal verdict for the tagged slot; `None` means keep
            // waiting (accepted) or resubmit later (retryable error).
            enum Verdict {
                Ok,
                Failed,
                Shed(String),
            }
            let (tag, verdict) = match resp {
                Response::Done { tag, outcome, .. } => {
                    let v = if outcome.is_ok() {
                        Verdict::Ok
                    } else {
                        Verdict::Failed
                    };
                    (tag, Some(v))
                }
                Response::Shed { tag, reason, .. } => (tag, Some(Verdict::Shed(reason))),
                Response::Error { tag, retryable, .. } => {
                    // Retryable (e.g. wal_failed): leave unsettled,
                    // the next reconnect resends under the same key.
                    (tag, (!retryable).then_some(Verdict::Failed))
                }
                Response::Progress { .. } => {
                    tally.progress += 1;
                    (None, None)
                }
                _ => (None, None),
            };
            let Some(verdict) = verdict else { continue };
            let Some(i) = tag.and_then(|t| t.parse::<usize>().ok()) else {
                continue;
            };
            if i < jobs && settled[i].is_none() {
                let shed = matches!(verdict, Verdict::Shed(_));
                settled[i] = Some(matches!(verdict, Verdict::Ok));
                match verdict {
                    Verdict::Ok => tally.ok += 1,
                    Verdict::Failed => tally.failed += 1,
                    Verdict::Shed(reason) => tally.sheds.push(reason),
                }
                if !shed {
                    if let Some(t0) = started[i] {
                        tally.latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                }
            }
        }
    }
    tally.unanswered = settled.iter().filter(|s| s.is_none()).count() as u64;
    tally
}

/// Queries the server's own `metrics` wire op — always directly
/// against the server socket, never through a chaos proxy — and
/// returns the server-measured end-to-end `(p50_ms, p99_ms)`.
/// `(0.0, 0.0)` when anything fails: the scrape is informational and
/// must never fail a soak.
fn scrape_server_percentiles(addr: std::net::SocketAddr) -> (f64, f64) {
    let scrape = || -> Option<(f64, f64)> {
        let stream = TcpStream::connect(addr).ok()?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut writer = stream.try_clone().ok()?;
        writer.write_all(b"{\"op\":\"metrics\"}\n").ok()?;
        writer.flush().ok()?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).ok()?;
        let v = Value::parse(line.trim()).ok()?;
        let h = v
            .get("metrics")?
            .get("histograms")?
            .get("service_request_us")?;
        Some((h.get("p50_ms")?.as_f64()?, h.get("p99_ms")?.as_f64()?))
    };
    scrape().unwrap_or((0.0, 0.0))
}

/// Runs the full soak: server up, clients hammer it, graceful drain,
/// aggregate. `progress` receives one line per phase.
pub fn run_load(opts: &LoadOptions, progress: &mut dyn FnMut(&str)) -> Result<LoadReport, String> {
    let listener =
        TcpListener::bind(("127.0.0.1", 0)).map_err(|e| format!("bind 127.0.0.1:0: {e}"))?;
    // Per-run nonce: scopes idempotency keys so two soaks against one
    // state dir cannot collide, and seeds client backoff jitter.
    let nonce = std::process::id() as u64
        ^ std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
    let state_dir = opts
        .wal
        .then(|| std::env::temp_dir().join(format!("vsnoop-load-{nonce:016x}")));
    let cfg = ServiceConfig {
        workers: opts.workers,
        queue_cap: opts.queue_cap,
        quota: opts.quota,
        default_deadline: Duration::from_millis(opts.deadline_ms),
        drain_grace: Duration::from_secs(5),
        cancel_grace: Duration::from_secs(2),
        journal_path: None,
        wal_path: state_dir.as_ref().map(|d| d.join("wal.jsonl")),
        pipeline_limit: opts.pipeline_limit,
        progress_interval: opts.progress_ms.map_or(
            ServiceConfig::default().progress_interval,
            Duration::from_millis,
        ),
        ..ServiceConfig::default()
    };
    let server = serve(listener, registry_factory(), cfg).map_err(|e| format!("serve: {e}"))?;
    let addr = server.local_addr();
    let proxy = match opts.chaos_seed {
        Some(seed) => Some(
            ChaosProxy::start(
                "127.0.0.1:0",
                ChaosConfig {
                    upstream: addr.to_string(),
                    seed,
                    ..ChaosConfig::default()
                },
            )
            .map_err(|e| format!("chaos proxy: {e}"))?,
        ),
        None => None,
    };
    let dial = proxy.as_ref().map_or(addr, ChaosProxy::addr);
    progress(&format!(
        "serving on {addr}{}: {} clients x {} submits over {} tenants{}",
        match opts.chaos_seed {
            Some(seed) => format!(" via chaos proxy {dial} (seed {seed})"),
            None => String::new(),
        },
        opts.clients,
        opts.jobs_per_client,
        opts.tenants,
        if opts.wal { ", WAL on" } else { "" },
    ));

    let t0 = Instant::now();
    let chaos = opts.chaos_seed.is_some();
    let tallies: Vec<ClientTally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|i| {
                let tenant = format!("tenant{}", i % opts.tenants.max(1));
                let (jobs, spin_ms, deadline_ms) =
                    (opts.jobs_per_client, opts.spin_ms, opts.deadline_ms);
                s.spawn(move || {
                    if chaos {
                        run_client_chaos(
                            dial,
                            tenant,
                            jobs,
                            spin_ms,
                            deadline_ms,
                            nonce ^ (i as u64) << 32,
                        )
                    } else {
                        run_client(dial, tenant, jobs, spin_ms, deadline_ms)
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| ClientTally {
                    unanswered: opts.jobs_per_client as u64,
                    ..Default::default()
                })
            })
            .collect()
    });
    let elapsed_s = t0.elapsed().as_secs_f64();
    // Scrape the server's own latency histograms before the drain
    // tears the reactor down.
    let (server_p50_ms, server_p99_ms) = scrape_server_percentiles(addr);
    progress("clients done; draining server");
    server.shutdown();
    let _ = server.wait();
    let chaos_faults = match proxy {
        Some(p) => {
            let r = p.stop();
            progress(&format!(
                "chaos: {} connections, {} fragments, {} stalls, {} cuts, {} resets",
                r.connections, r.fragments, r.stalls, r.cuts, r.resets
            ));
            r.fragments + r.stalls + r.cuts + r.resets
        }
        None => 0,
    };
    if let Some(dir) = &state_dir {
        let _ = std::fs::remove_dir_all(dir);
    }

    let mut latencies: Vec<f64> = tallies
        .iter()
        .flat_map(|t| t.latencies_ms.iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let mut shed_counts = std::collections::BTreeMap::<String, u64>::new();
    for t in &tallies {
        for reason in &t.sheds {
            *shed_counts.entry(reason.clone()).or_insert(0) += 1;
        }
    }
    let ok: u64 = tallies.iter().map(|t| t.ok).sum();
    let failed: u64 = tallies.iter().map(|t| t.failed).sum();
    let completed = latencies.len() as u64;
    Ok(LoadReport {
        requests: (opts.clients * opts.jobs_per_client) as u64,
        ok,
        shed: shed_counts.into_iter().collect(),
        failed,
        unanswered: tallies.iter().map(|t| t.unanswered).sum(),
        elapsed_s,
        p50_ms: percentile(&latencies, 50.0),
        p99_ms: percentile(&latencies, 99.0),
        max_ms: latencies.last().copied().unwrap_or(0.0),
        requests_per_sec: if elapsed_s > 0.0 {
            completed as f64 / elapsed_s
        } else {
            0.0
        },
        peak_rss_bytes: peak_rss_bytes(),
        reconnects: tallies.iter().map(|t| t.reconnects).sum(),
        chaos_faults,
        progress_frames: tallies.iter().map(|t| t.progress).sum(),
        server_p50_ms,
        server_p99_ms,
    })
}

/// Peak resident set size (`VmHWM`) in bytes, 0 where unavailable.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[], 99.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn small_soak_completes_without_sheds_or_losses() {
        let opts = LoadOptions {
            clients: 4,
            tenants: 2,
            jobs_per_client: 3,
            spin_ms: 1,
            workers: 4,
            queue_cap: 64,
            quota: TenantQuota::default(),
            deadline_ms: 5_000,
            ..LoadOptions::default()
        };
        let report = run_load(&opts, &mut |_| {}).expect("soak runs");
        assert_eq!(report.requests, 12);
        assert_eq!(report.ok, 12, "all jobs complete: {report:?}");
        assert_eq!(report.unanswered, 0);
        assert!(report.p99_ms > 0.0);
        // The server's own histograms answered the `metrics` op (the
        // exact values accumulate process-globally across soaks, so
        // only their shape is asserted here).
        assert!(
            report.server_p50_ms > 0.0 && report.server_p99_ms >= report.server_p50_ms,
            "server-side percentiles present and ordered: {report:?}"
        );
    }

    #[test]
    fn chaos_soak_loses_nothing_and_duplicates_nothing() {
        // Every submit rides a hostile link (torn frames, stalls,
        // cuts, resets) yet must settle exactly once: ok for every
        // request, zero unanswered, and the proxy must actually have
        // injected faults for the run to count as a chaos soak.
        let opts = LoadOptions {
            clients: 6,
            tenants: 2,
            jobs_per_client: 4,
            spin_ms: 1,
            workers: 4,
            queue_cap: 64,
            quota: TenantQuota::default(),
            deadline_ms: 10_000,
            wal: true,
            chaos_seed: Some(42),
            ..LoadOptions::default()
        };
        let report = run_load(&opts, &mut |_| {}).expect("chaos soak runs");
        assert_eq!(report.unanswered, 0, "no request may be lost: {report:?}");
        assert_eq!(report.requests, 24);
        assert_eq!(
            report.ok + report.failed + report.shed_total(),
            report.requests,
            "each request settles exactly once: {report:?}"
        );
        assert!(report.chaos_faults > 0, "proxy must inject faults");
    }

    #[test]
    fn overload_sheds_typed_without_hangs() {
        // 1-deep queues and 6x oversubmission: most requests must shed,
        // every request must still get a terminal answer.
        let opts = LoadOptions {
            clients: 6,
            tenants: 2,
            jobs_per_client: 6,
            spin_ms: 5,
            workers: 2,
            queue_cap: 4,
            quota: TenantQuota {
                max_inflight: 1,
                max_queued: 1,
                max_queued_bytes: 1 << 20,
            },
            deadline_ms: 5_000,
            ..LoadOptions::default()
        };
        let report = run_load(&opts, &mut |_| {}).expect("soak runs");
        assert_eq!(report.unanswered, 0, "no request may go unanswered");
        assert!(report.shed_total() > 0, "overload must shed: {report:?}");
        for (reason, _) in &report.shed {
            assert!(
                [
                    "queue_full",
                    "tenant_queue_full",
                    "tenant_bytes",
                    "pipeline_full",
                    "draining"
                ]
                .contains(&reason.as_str()),
                "unexpected shed reason {reason}"
            );
        }
        assert_eq!(
            report.ok + report.failed + report.shed_total(),
            report.requests
        );
    }

    #[test]
    fn pipelining_past_the_connection_cap_sheds_pipeline_full() {
        // Each client pipelines 6 submits against a 2-deep connection
        // cap: the excess must shed as retryable `pipeline_full`, and
        // every request must still settle exactly once.
        let opts = LoadOptions {
            clients: 3,
            tenants: 1,
            jobs_per_client: 6,
            spin_ms: 20,
            workers: 1,
            queue_cap: 64,
            quota: TenantQuota::default(),
            deadline_ms: 10_000,
            pipeline_limit: 2,
            ..LoadOptions::default()
        };
        let report = run_load(&opts, &mut |_| {}).expect("soak runs");
        assert_eq!(report.unanswered, 0, "no request may go unanswered");
        assert!(
            report
                .shed
                .iter()
                .any(|(reason, n)| reason == "pipeline_full" && *n > 0),
            "over-pipelined submits must shed pipeline_full: {report:?}"
        );
        assert_eq!(
            report.ok + report.failed + report.shed_total(),
            report.requests
        );
    }

    #[test]
    fn long_jobs_stream_progress_frames() {
        let opts = LoadOptions {
            clients: 2,
            tenants: 1,
            jobs_per_client: 1,
            spin_ms: 200,
            workers: 2,
            queue_cap: 8,
            quota: TenantQuota::default(),
            deadline_ms: 10_000,
            wal: false,
            progress_ms: Some(25),
            ..LoadOptions::default()
        };
        let report = run_load(&opts, &mut |_| {}).expect("soak runs");
        assert_eq!(report.ok, 2, "both long jobs complete: {report:?}");
        assert!(
            report.progress_frames > 0,
            "a 200ms job on a 25ms cadence must stream progress: {report:?}"
        );
    }
}

//! Jobs: named, seeded units of supervised work.

use std::sync::Arc;

use super::cancel::CancelToken;
use super::json::Value;

/// Context handed to a running job attempt.
pub struct JobCtx {
    /// The attempt's cancellation token; poll at step boundaries (the
    /// simulator's round loops already do via
    /// [`crate::runner::poll_current`]).
    pub token: CancelToken,
    /// 1-based attempt number (2 means first retry).
    pub attempt: u32,
}

impl JobCtx {
    /// Polls the cancellation token, unwinding if the watchdog fired.
    pub fn checkpoint(&self) {
        self.token.checkpoint();
    }
}

/// The callable payload of a job. Must be re-runnable (retries call it
/// again) and produce the job's canonical output text on success.
pub type JobFn = Arc<dyn Fn(&JobCtx) -> Result<String, String> + Send + Sync>;

/// What a job *is*, independent of any particular run: enough to name it
/// in the journal and to rebuild it from a crash reproducer.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Unique job name within the campaign (also the journal key).
    pub name: String,
    /// The seed the job derives all randomness from.
    pub seed: u64,
    /// Campaign-defined parameters (e.g. the run scale); stored verbatim
    /// in journal entries and crash reproducers.
    pub params: Value,
    /// The deterministic step window `[start, end)` the job executes
    /// (e.g. warm-up rounds to warm-up + measured rounds), recorded in
    /// crash reproducers for triage; `None` when not meaningful.
    pub step_window: Option<(u64, u64)>,
}

/// A schedulable job: spec plus payload.
#[derive(Clone)]
pub struct Job {
    /// Identity and parameters.
    pub spec: JobSpec,
    /// The work itself.
    pub run: JobFn,
}

impl Job {
    /// Builds a job from its parts.
    pub fn new(
        name: impl Into<String>,
        seed: u64,
        params: Value,
        run: impl Fn(&JobCtx) -> Result<String, String> + Send + Sync + 'static,
    ) -> Self {
        Job {
            spec: JobSpec {
                name: name.into(),
                seed,
                params,
                step_window: None,
            },
            run: Arc::new(run),
        }
    }

    /// Attaches a step window to the spec (builder style).
    #[must_use]
    pub fn with_step_window(mut self, start: u64, end: u64) -> Self {
        self.spec.step_window = Some((start, end));
        self
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("spec", &self.spec).finish()
    }
}

/// Why a job attempt (or the whole job) failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked; the payload's message, when extractable.
    Panicked {
        /// Panic message (`"<non-string panic payload>"` otherwise).
        message: String,
    },
    /// The watchdog cancelled the job past its deadline.
    TimedOut {
        /// The configured per-job deadline, in milliseconds (the
        /// *configured* limit, not the measured wall time, so journal
        /// entries stay deterministic).
        limit_ms: u64,
    },
    /// The job returned an error of its own.
    Failed {
        /// The job's error message.
        message: String,
    },
    /// The job was cancelled by its supervisor before producing a
    /// result — a service drain, an explicit client cancel — rather
    /// than by a deadline. Distinct from [`JobError::TimedOut`] so a
    /// drained journal is not mistaken for a pile of deadline misses.
    Cancelled {
        /// Why the job was cancelled (e.g. `"drain"`).
        reason: String,
    },
}

impl JobError {
    /// Stable machine-readable kind, used in journals and reproducers.
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Panicked { .. } => "panic",
            JobError::TimedOut { .. } => "timeout",
            JobError::Failed { .. } => "failed",
            JobError::Cancelled { .. } => "cancelled",
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked { message } => write!(f, "panicked: {message}"),
            JobError::TimedOut { limit_ms } => {
                write!(f, "timed out (deadline {limit_ms} ms)")
            }
            JobError::Failed { message } => write!(f, "failed: {message}"),
            JobError::Cancelled { reason } => write!(f, "cancelled: {reason}"),
        }
    }
}

/// Final, post-supervision record of one job: what ran, how many
/// attempts it took, and how it ended.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Position in the campaign's job list (merged output order).
    pub index: usize,
    /// The job's spec.
    pub spec: JobSpec,
    /// Total attempts consumed (1 = succeeded or failed first try).
    pub attempts: u32,
    /// The job's output on success, or the last error.
    pub outcome: Result<String, JobError>,
    /// Whether this record was restored from the journal by `--resume`
    /// rather than executed in this run.
    pub resumed: bool,
    /// Wall-clock time from the job's first dispatch to its terminal
    /// outcome, in milliseconds (`None` when the journal it was
    /// restored from predates the field).
    pub wall_ms: Option<u64>,
    /// Duration of the final attempt alone, in milliseconds.
    pub attempt_ms: Option<u64>,
}

impl JobRecord {
    /// Whether the job ultimately succeeded.
    pub fn succeeded(&self) -> bool {
        self.outcome.is_ok()
    }

    /// Whether the job needed at least one retry.
    pub fn retried(&self) -> bool {
        self.attempts > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_error_kinds_and_display() {
        let p = JobError::Panicked {
            message: "boom".into(),
        };
        assert_eq!(p.kind(), "panic");
        assert!(p.to_string().contains("boom"));
        let t = JobError::TimedOut { limit_ms: 500 };
        assert_eq!(t.kind(), "timeout");
        assert!(t.to_string().contains("500"));
        let f = JobError::Failed {
            message: "shape off".into(),
        };
        assert_eq!(f.kind(), "failed");
        assert!(f.to_string().contains("shape off"));
    }

    #[test]
    fn job_builder_carries_spec() {
        let j =
            Job::new("fig1", 7, Value::Null, |_ctx| Ok("out".into())).with_step_window(100, 300);
        assert_eq!(j.spec.name, "fig1");
        assert_eq!(j.spec.seed, 7);
        assert_eq!(j.spec.step_window, Some((100, 300)));
        let ctx = JobCtx {
            token: CancelToken::new(),
            attempt: 1,
        };
        assert_eq!((j.run)(&ctx).unwrap(), "out");
    }
}

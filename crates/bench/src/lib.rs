//! Report formatting shared by the experiment binaries.
//!
//! Every binary in this crate regenerates one table or figure of the
//! paper and prints it as an aligned text table with paper-reported values
//! side by side where available. The text itself is produced by the
//! [`reports`] module; [`campaign`] wraps those reports as supervised
//! jobs for the `all` campaign runner.

pub mod campaign;
pub mod reports;
pub mod service_jobs;
pub mod service_load;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use vsnoop_bench::TextTable;
///
/// let mut t = TextTable::new(["app", "measured", "paper"]);
/// t.row(["fft", "30.1", "30.6"]);
/// let s = t.to_string();
/// assert!(s.contains("fft"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows shorter than the header are padded with
    /// empty cells; longer rows are allowed and widen the table.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC-4180-style quoting), for plotting
    /// pipelines. Set `VSNOOP_CSV=<dir>` when running an experiment binary
    /// to also dump its tables there.
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            let line: Vec<String> = row.iter().map(|c| cell(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `<dir>/<name>.csv` if the `VSNOOP_CSV`
    /// environment variable names a directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn maybe_dump_csv(&self, name: &str) -> std::io::Result<()> {
        if let Ok(dir) = std::env::var("VSNOOP_CSV") {
            std::fs::create_dir_all(&dir)?;
            std::fs::write(format!("{dir}/{name}.csv"), self.to_csv())?;
        }
        Ok(())
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut std::fmt::Formatter<'_>, row: &[String]| -> std::fmt::Result {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i + 1 == widths.len() {
                    writeln!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "{cell:<w$}  ")?;
                }
            }
            Ok(())
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a measured value with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a measured value with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats an optional paper value ("-" when the paper has none).
pub fn opt(x: Option<f64>) -> String {
    x.map_or_else(|| "-".to_string(), |v| format!("{v:.1}"))
}

/// Prints a banner heading for an experiment.
pub fn heading(title: &str, context: &str) {
    print!("{}", heading_string(title, context));
}

/// The banner heading as a string — exactly the bytes [`heading`]
/// prints, so report text built from it matches binary stdout.
pub fn heading_string(title: &str, context: &str) -> String {
    format!("\n=== {title} ===\n{context}\n\n")
}

/// Chooses the experiment scale from `VSNOOP_SCALE` (`quick` for smoke
/// runs, anything else or unset for the full scale used in
/// EXPERIMENTS.md).
pub fn scale_from_env() -> vsnoop::experiments::RunScale {
    match std::env::var("VSNOOP_SCALE").as_deref() {
        Ok("quick") => vsnoop::experiments::RunScale::quick(),
        _ => vsnoop::experiments::RunScale::full(),
    }
}

/// Initializes the observability layer from the shared `--trace-dir`
/// flag (also `--trace-dir=<dir>`), falling back to the `VSNOOP_TRACE`
/// environment variable. Every experiment binary calls this first
/// thing in `main`; with neither source set, tracing stays off and
/// every hook in the workspace remains a single predictable branch.
///
/// Telemetry, flight dumps and epoch exports go to files under the
/// trace directory only — stdout is byte-identical with tracing off
/// and on.
pub fn init_obs() {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-dir" {
            if let Some(dir) = args.next() {
                vsnoop::obs::set_trace_dir(Some(std::path::PathBuf::from(dir)));
                return;
            }
        } else if let Some(dir) = a.strip_prefix("--trace-dir=") {
            if !dir.is_empty() {
                vsnoop::obs::set_trace_dir(Some(std::path::PathBuf::from(dir)));
                return;
            }
        }
    }
    vsnoop::obs::init_from_env();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = TextTable::new(["a", "longer"]);
        t.row(["xxxxx", "1"]);
        t.row(["y", "2"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have the same width for column 0.
        assert!(lines[2].starts_with("xxxxx  "));
        assert!(lines[3].starts_with("y      "));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.to_string();
        assert!(s.contains('1'));
    }

    #[test]
    fn csv_rendering_quotes_when_needed() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["plain", "with,comma"]);
        t.row(["with\"quote", "x"]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"with,comma\"");
        assert_eq!(lines[2], "\"with\"\"quote\",x");
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(4.5678), "4.6");
        assert_eq!(f2(4.5678), "4.57");
        assert_eq!(opt(None), "-");
        assert_eq!(opt(Some(62.79)), "62.8");
    }
}

//! Robust byte-level tailing of append-only JSONL files.
//!
//! [`Tailer`] follows a file the way `tail -f` does, but hardened for
//! the ways a live telemetry stream actually misbehaves:
//!
//! - **Partially-written lines.** The writer appends a line and flushes
//!   it in two syscalls; a reader can observe the bytes mid-line, or
//!   even mid-way through a multi-byte UTF-8 character. The tailer
//!   reads raw bytes, emits only newline-terminated lines, and carries
//!   the incomplete remainder over to the next poll.
//! - **Truncation / rotation.** A fresh run reusing the trace directory
//!   truncates the file. When the file shrinks below the read offset,
//!   the tailer re-seeks to the beginning and discards any buffered
//!   partial line — it belonged to the old incarnation.
//! - **Missing file.** Tailing may start before the writer's first
//!   record; a missing file is "no new lines", not an error.
//!
//! The service's telemetry subscribers and the `obs_tail` binary share
//! this type, so both survive the same failure modes.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Incrementally reads complete lines from a growing (and occasionally
/// truncated) file. See the module docs for the failure modes handled.
#[derive(Debug)]
pub struct Tailer {
    path: PathBuf,
    /// Byte offset of the first byte not yet consumed from the file.
    offset: u64,
    /// Bytes of a trailing line the writer has not finished yet.
    partial: Vec<u8>,
}

impl Tailer {
    /// Starts tailing `path` from the beginning.
    pub fn new(path: impl Into<PathBuf>) -> Tailer {
        Tailer {
            path: path.into(),
            offset: 0,
            partial: Vec::new(),
        }
    }

    /// The file being tailed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads whatever the file holds beyond the last poll and hands
    /// every *complete* line (newline-terminated; the terminator is
    /// stripped) to `sink`. Returns the number of lines emitted.
    ///
    /// Invalid UTF-8 inside a complete line is replaced rather than
    /// refused — a torn write from a crashed producer must not wedge
    /// the tail forever.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than `NotFound` (a missing
    /// file simply has no lines yet).
    pub fn poll(&mut self, mut sink: impl FnMut(&str)) -> std::io::Result<usize> {
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let len = file.metadata()?.len();
        if len < self.offset {
            // Truncated or rotated: the buffered partial line belonged
            // to the previous incarnation of the file.
            self.offset = 0;
            self.partial.clear();
        }
        if len == self.offset {
            return Ok(0);
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut chunk = Vec::new();
        file.read_to_end(&mut chunk)?;
        self.offset += chunk.len() as u64;

        let mut emitted = 0usize;
        let mut rest: &[u8] = &chunk;
        while let Some(nl) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(nl);
            rest = &tail[1..];
            let line: Vec<u8> = if self.partial.is_empty() {
                head.to_vec()
            } else {
                let mut joined = std::mem::take(&mut self.partial);
                joined.extend_from_slice(head);
                joined
            };
            sink(String::from_utf8_lossy(&line).trim_end_matches('\r'));
            emitted += 1;
        }
        self.partial.extend_from_slice(rest);
        Ok(emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vsnoop-tail-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn collect(t: &mut Tailer) -> Vec<String> {
        let mut out = Vec::new();
        t.poll(|l| out.push(l.to_string())).unwrap();
        out
    }

    #[test]
    fn missing_file_is_empty_not_an_error() {
        let dir = scratch("missing");
        let mut t = Tailer::new(dir.join("telemetry.jsonl"));
        assert_eq!(collect(&mut t), Vec::<String>::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_lines_are_buffered_across_polls() {
        let dir = scratch("partial");
        let path = dir.join("telemetry.jsonl");
        let mut t = Tailer::new(&path);

        std::fs::write(&path, b"{\"a\":1}\n{\"b\":").unwrap();
        assert_eq!(collect(&mut t), ["{\"a\":1}"]);

        // Writer finishes the line (and starts another) later.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"2}\n{\"c\":").unwrap();
        assert_eq!(collect(&mut t), ["{\"b\":2}"]);
        f.write_all(b"3}\n").unwrap();
        assert_eq!(collect(&mut t), ["{\"c\":3}"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_multibyte_utf8_does_not_wedge_the_tail() {
        let dir = scratch("utf8");
        let path = dir.join("telemetry.jsonl");
        let mut t = Tailer::new(&path);

        // "café" split in the middle of the two-byte é.
        std::fs::write(&path, b"{\"s\":\"caf\xc3").unwrap();
        assert_eq!(collect(&mut t), Vec::<String>::new(), "incomplete: held");
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"\xa9\"}\n").unwrap();
        assert_eq!(collect(&mut t), ["{\"s\":\"caf\u{e9}\"}"]);

        // A torn line that *does* get newline-terminated with invalid
        // UTF-8 inside is emitted lossily, not refused.
        f.write_all(b"bad\xffline\n").unwrap();
        let lines = collect(&mut t);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("bad"), "{lines:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_resets_offset_and_discards_stale_partial() {
        let dir = scratch("trunc");
        let path = dir.join("telemetry.jsonl");
        let mut t = Tailer::new(&path);

        std::fs::write(&path, b"{\"old\":1}\n{\"torn\":").unwrap();
        assert_eq!(collect(&mut t), ["{\"old\":1}"]);

        // A fresh run truncates and starts over: the buffered partial
        // must not be glued onto the new file's first line.
        std::fs::write(&path, b"{\"new\":1}\n").unwrap();
        assert_eq!(collect(&mut t), ["{\"new\":1}"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unchanged_file_emits_nothing() {
        let dir = scratch("idle");
        let path = dir.join("telemetry.jsonl");
        std::fs::write(&path, b"{\"a\":1}\n").unwrap();
        let mut t = Tailer::new(&path);
        assert_eq!(collect(&mut t).len(), 1);
        assert_eq!(collect(&mut t), Vec::<String>::new());
        assert_eq!(collect(&mut t), Vec::<String>::new());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Migration storm: what happens to virtual snooping when the hypervisor
//! scheduler relocates vCPUs aggressively — and how the per-VM cache
//! residence counters (Section IV-B) rescue it.
//!
//! Sweeps migration periods and prints, for each policy, the snoops
//! relative to the broadcast baseline plus the vCPU-map sizes at the end
//! of the run.
//!
//! ```text
//! cargo run --release --example migration_storm
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use virtual_snooping::prelude::*;

fn run(policy: FilterPolicy, period_ms: f64) -> (f64, Vec<usize>) {
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::new(cfg, policy, ContentPolicy::Broadcast);
    let mut wl = Workload::homogeneous(
        profile("ocean").expect("registered workload"),
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            ..Default::default()
        },
    );
    sim.run(&mut wl, 20_000);
    sim.reset_measurement();

    let period_cycles = (period_ms * cfg.cycles_per_ms as f64) as u64;
    let mut rng = SmallRng::seed_from_u64(7);
    let n_vms = cfg.n_vms;
    let vcpus = cfg.vcpus_per_vm;
    sim.run_with_migration(&mut wl, 600_000, period_cycles, move |_| {
        let a = rng.gen_range(0..n_vms) as u16;
        let mut b = rng.gen_range(0..n_vms - 1) as u16;
        if b >= a {
            b += 1;
        }
        (
            VcpuId::new(VmId::new(a), rng.gen_range(0..vcpus)),
            VcpuId::new(VmId::new(b), rng.gen_range(0..vcpus)),
        )
    });

    let s = sim.stats();
    let norm = 100.0 * s.snoops as f64 / (s.l2_misses.max(1) * 16) as f64;
    let map_sizes = (0..cfg.n_vms)
        .map(|v| sim.vcpu_map(VmId::new(v as u16)).len())
        .collect();
    (norm, map_sizes)
}

fn main() {
    println!("Migration storm on `ocean` (4 VMs x 4 vCPUs, 16 cores)");
    println!("snoops as % of broadcast baseline; ideal = 25%\n");
    println!("period    vsnoop-base          counter              counter-threshold");
    for period in [5.0, 1.0, 0.5, 0.1] {
        print!("{period:>4} ms");
        for policy in [
            FilterPolicy::VsnoopBase,
            FilterPolicy::Counter,
            FilterPolicy::COUNTER_THRESHOLD_10,
        ] {
            let (norm, maps) = run(policy, period);
            print!("   {norm:5.1}% (maps {maps:?})");
        }
        println!();
    }
    println!(
        "\nvsnoop-base maps only grow toward all 16 cores; the counter\n\
         mechanism removes cores once their residence counters drain."
    );
}

//! 2D mesh topology with dimension-ordered (XY) routing.
//!
//! The paper's simulated system uses a 4x4 2D mesh with 16-byte links
//! (Table II). Snoop traffic cost is dominated by how many links each
//! message crosses, so the topology's job is hop accounting: XY routing
//! makes the hop count between two nodes their Manhattan distance.

use std::fmt;

/// A structurally invalid network description, rejected at construction.
///
/// Carries the offending dimensions so callers (and the simulator's
/// `SimError::InvalidConfig`) can say exactly which configuration was
/// refused instead of aborting deep inside hop accounting.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetConfigError {
    /// A mesh dimension was zero.
    EmptyMesh {
        /// Requested width (columns).
        width: usize,
        /// Requested height (rows).
        height: usize,
    },
    /// A network was configured with no memory-controller ports; every
    /// memory round-trip would have nowhere to go.
    NoMemoryPorts {
        /// Mesh width the ports were declared for.
        width: usize,
        /// Mesh height the ports were declared for.
        height: usize,
    },
    /// A declared memory port does not exist on the mesh.
    PortOutsideMesh {
        /// The out-of-range port.
        port: NodeId,
        /// Mesh width.
        width: usize,
        /// Mesh height.
        height: usize,
    },
}

impl fmt::Display for NetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetConfigError::EmptyMesh { width, height } => {
                write!(f, "mesh dimensions must be positive (got {width}x{height})")
            }
            NetConfigError::NoMemoryPorts { width, height } => {
                write!(f, "{width}x{height} mesh has no memory ports")
            }
            NetConfigError::PortOutsideMesh {
                port,
                width,
                height,
            } => {
                write!(f, "memory port {port} outside {width}x{height} mesh")
            }
        }
    }
}

impl std::error::Error for NetConfigError {}

/// A node (router) of the mesh; node *i* hosts core *i* in row-major order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node identifier from a dense index.
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(i: u16) -> Self {
        NodeId(i)
    }
}

/// A `width` x `height` 2D mesh.
///
/// # Examples
///
/// ```
/// use sim_net::{Mesh, NodeId};
///
/// let mesh = Mesh::new(4, 4);
/// assert_eq!(mesh.nodes().count(), 16);
/// // Opposite corners of a 4x4 mesh are 6 hops apart under XY routing.
/// assert_eq!(mesh.hops(NodeId::new(0), NodeId::new(15)), 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mesh {
    width: usize,
    height: usize,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; use [`Mesh::try_new`] to get a
    /// typed error instead.
    pub fn new(width: usize, height: usize) -> Self {
        Self::try_new(width, height).expect("mesh dimensions must be positive")
    }

    /// Creates a mesh, rejecting degenerate dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`NetConfigError::EmptyMesh`] if either dimension is zero.
    pub fn try_new(width: usize, height: usize) -> Result<Self, NetConfigError> {
        if width == 0 || height == 0 {
            return Err(NetConfigError::EmptyMesh { width, height });
        }
        Ok(Mesh { width, height })
    }

    /// Returns the mesh width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns the mesh height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Returns the number of nodes.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// Returns `true` for a degenerate 0-node mesh (never constructible).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over all node identifiers in row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u16).map(NodeId::new)
    }

    /// Returns the `(x, y)` coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        let i = node.index();
        assert!(
            i < self.len(),
            "node {node} out of range for {}x{} mesh",
            self.width,
            self.height
        );
        (i % self.width, i / self.width)
    }

    /// Returns the node at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        assert!(x < self.width && y < self.height, "({x},{y}) outside mesh");
        NodeId::new((y * self.width + x) as u16)
    }

    /// Number of links a message from `a` to `b` traverses under XY
    /// routing (the Manhattan distance).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
    }

    /// Sum of hop counts from `src` to each destination (multicasts are
    /// modelled as repeated unicasts, as in the GEMS/Garnet baseline).
    pub fn sum_hops(&self, src: NodeId, dests: impl IntoIterator<Item = NodeId>) -> u64 {
        dests
            .into_iter()
            .map(|d| u64::from(self.hops(src, d)))
            .sum()
    }

    /// Returns the default memory-controller ports: the four corner nodes
    /// (or fewer for degenerate meshes).
    pub fn corner_ports(&self) -> Vec<NodeId> {
        let mut v = vec![
            self.node_at(0, 0),
            self.node_at(self.width - 1, 0),
            self.node_at(0, self.height - 1),
            self.node_at(self.width - 1, self.height - 1),
        ];
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Returns the memory port (from `ports`) closest to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is empty; a port-less network is refused at
    /// construction by [`crate::Network::try_with_config`], so reaching
    /// this with no ports means the caller bypassed validation — use
    /// [`Mesh::try_nearest_port`] there instead.
    pub fn nearest_port(&self, node: NodeId, ports: &[NodeId]) -> NodeId {
        self.try_nearest_port(node, ports)
            .expect("need at least one memory port")
    }

    /// Returns the memory port (from `ports`) closest to `node`, or
    /// `None` when `ports` is empty.
    pub fn try_nearest_port(&self, node: NodeId, ports: &[NodeId]) -> Option<NodeId> {
        ports
            .iter()
            .min_by_key(|&&p| (self.hops(node, p), p.index()))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_mesh_is_refused_with_dimensions() {
        match Mesh::try_new(0, 4) {
            Err(NetConfigError::EmptyMesh {
                width: 0,
                height: 4,
            }) => {}
            other => panic!("expected EmptyMesh, got {other:?}"),
        }
        let msg = Mesh::try_new(4, 0).unwrap_err().to_string();
        assert!(
            msg.contains("4x0"),
            "message must name the dimensions: {msg}"
        );
        assert!(Mesh::try_new(1, 1).is_ok());
    }

    #[test]
    fn nearest_port_of_empty_port_list_is_none() {
        let m = Mesh::new(2, 2);
        assert_eq!(m.try_nearest_port(NodeId::new(0), &[]), None);
        assert_eq!(
            m.try_nearest_port(NodeId::new(3), &m.corner_ports()),
            Some(NodeId::new(3))
        );
    }

    #[test]
    fn coords_roundtrip() {
        let m = Mesh::new(4, 4);
        for n in m.nodes() {
            let (x, y) = m.coords(n);
            assert_eq!(m.node_at(x, y), n);
        }
    }

    #[test]
    fn hops_are_manhattan() {
        let m = Mesh::new(4, 4);
        assert_eq!(m.hops(m.node_at(0, 0), m.node_at(0, 0)), 0);
        assert_eq!(m.hops(m.node_at(0, 0), m.node_at(3, 0)), 3);
        assert_eq!(m.hops(m.node_at(1, 1), m.node_at(2, 3)), 3);
        // symmetric
        assert_eq!(
            m.hops(m.node_at(0, 2), m.node_at(3, 1)),
            m.hops(m.node_at(3, 1), m.node_at(0, 2))
        );
    }

    #[test]
    fn sum_hops_broadcast_4x4() {
        let m = Mesh::new(4, 4);
        let src = m.node_at(0, 0);
        let total = m.sum_hops(src, m.nodes().filter(|&n| n != src));
        // Sum of Manhattan distances from corner (0,0) of 4x4:
        // sum over x,y of (x + y) = 4*(0+1+2+3)*2 = 48.
        assert_eq!(total, 48);
    }

    #[test]
    fn corner_ports_and_nearest() {
        let m = Mesh::new(4, 4);
        let ports = m.corner_ports();
        assert_eq!(ports.len(), 4);
        assert_eq!(m.nearest_port(m.node_at(1, 1), &ports), m.node_at(0, 0));
        assert_eq!(m.nearest_port(m.node_at(2, 3), &ports), m.node_at(3, 3));
    }

    #[test]
    fn single_row_mesh() {
        let m = Mesh::new(8, 1);
        assert_eq!(m.hops(NodeId::new(0), NodeId::new(7)), 7);
        assert_eq!(m.corner_ports().len(), 2);
    }

    #[test]
    fn one_by_one_mesh() {
        let m = Mesh::new(1, 1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.corner_ports().len(), 1);
        assert_eq!(m.hops(NodeId::new(0), NodeId::new(0)), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = Mesh::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_rejected() {
        let m = Mesh::new(2, 2);
        let _ = m.coords(NodeId::new(4));
    }
}

//! Host-physical page allocation.
//!
//! The hypervisor owns the machine's physical memory and hands out
//! host-physical page ranges to VMs (and keeps one for itself). Guest
//! software addresses memory through guest-physical addresses; the
//! hypervisor's mapping to host-physical pages is what provides memory
//! isolation between VMs — the property virtual snooping exploits
//! (Section II-A).

/// A contiguous range of host-physical pages.
///
/// # Examples
///
/// ```
/// use sim_vm::PageRange;
///
/// let r = PageRange::new(10, 4);
/// assert_eq!(r.page(2), 12);
/// assert!(r.contains(13));
/// assert!(!r.contains(14));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PageRange {
    base: u64,
    pages: u64,
}

impl PageRange {
    /// Creates a page range starting at host page `base`, `pages` pages
    /// long.
    pub const fn new(base: u64, pages: u64) -> Self {
        PageRange { base, pages }
    }

    /// Returns the first host page number of the range.
    pub const fn base(&self) -> u64 {
        self.base
    }

    /// Returns the number of pages in the range.
    pub const fn len(&self) -> u64 {
        self.pages
    }

    /// Returns `true` if the range is empty.
    pub const fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Returns the `i`-th host page of the range.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn page(&self, i: u64) -> u64 {
        assert!(
            i < self.pages,
            "page index {i} out of range 0..{}",
            self.pages
        );
        self.base + i
    }

    /// Returns `true` if `page` falls within the range.
    pub const fn contains(&self, page: u64) -> bool {
        page >= self.base && page < self.base + self.pages
    }

    /// Iterates over the host page numbers of the range.
    pub fn iter(&self) -> impl Iterator<Item = u64> {
        self.base..self.base + self.pages
    }
}

/// A bump allocator of host-physical pages.
///
/// Allocation never reuses pages — simulated traces only ever need a bounded
/// footprint, and monotonically growing page numbers make every allocated
/// page globally unique, which keeps sharing-directory bookkeeping trivial.
///
/// # Examples
///
/// ```
/// use sim_vm::MemoryMap;
///
/// let mut mem = MemoryMap::new();
/// let a = mem.alloc_region(8);
/// let b = mem.alloc_region(8);
/// assert_eq!(a.base(), 0);
/// assert_eq!(b.base(), 8);
/// assert!(!a.contains(b.base()));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MemoryMap {
    next_free: u64,
}

impl MemoryMap {
    /// Creates an empty memory map; the first allocation starts at page 0.
    pub fn new() -> Self {
        MemoryMap::default()
    }

    /// Allocates a fresh contiguous region of `pages` host-physical pages.
    pub fn alloc_region(&mut self, pages: u64) -> PageRange {
        let r = PageRange::new(self.next_free, pages);
        self.next_free += pages;
        r
    }

    /// Allocates a single fresh host-physical page (used by copy-on-write).
    pub fn alloc_page(&mut self) -> u64 {
        self.alloc_region(1).base()
    }

    /// Returns the total number of pages handed out so far.
    pub fn allocated_pages(&self) -> u64 {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_disjoint_and_ordered() {
        let mut mem = MemoryMap::new();
        let a = mem.alloc_region(16);
        let b = mem.alloc_region(4);
        let c = mem.alloc_page();
        assert_eq!(a.iter().count(), 16);
        assert_eq!(b.base(), 16);
        assert_eq!(c, 20);
        assert_eq!(mem.allocated_pages(), 21);
        for p in a.iter() {
            assert!(!b.contains(p));
        }
    }

    #[test]
    fn empty_range() {
        let r = PageRange::new(5, 0);
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
        assert!(!r.contains(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_index_bounds_checked() {
        let r = PageRange::new(0, 2);
        let _ = r.page(2);
    }
}

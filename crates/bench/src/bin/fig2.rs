//! Fig. 2 — potential snoop reductions vs. number of VMs and hypervisor
//! transaction ratio.

use vsnoop::fig2_sweep;
use vsnoop_bench::{f1, heading, TextTable};

fn main() {
    heading(
        "Figure 2: potential snoop reduction (analytic model)",
        "VMs of 4 vCPUs on 4*V cores; curves are hypervisor transaction\n\
         ratios. Paper: >93% ideal at 16 VMs; 84-89% at 5-10%.",
    );
    let pts = fig2_sweep();
    let mut t = TextTable::new(["VMs", "cores", "ideal", "5%", "10%", "20%", "30%", "40%"]);
    for &n_vms in &[2usize, 4, 8, 16] {
        let row_pts: Vec<_> = pts.iter().filter(|p| p.n_vms == n_vms).collect();
        let mut cells = vec![n_vms.to_string(), (4 * n_vms).to_string()];
        for p in row_pts {
            cells.push(f1(p.reduction_pct));
        }
        t.row(cells);
    }
    t.maybe_dump_csv("fig2").expect("csv dump");
    println!("{t}");
}

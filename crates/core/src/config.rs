//! Simulated system configuration (Table II).
//!
//! The paper models 16 in-order SPARC cores with 32 KB 4-way L1s, 256 KB
//! 8-way private L2s, Token Coherence (MOESI), and a 4x4 2D mesh with
//! 16-byte links and 4-cycle routers. [`SystemConfig::paper_default`]
//! reproduces that machine; the fields are public so experiments can scale
//! it (e.g. the 64-core projection of Fig. 2).

use sim_net::LatencyModel;

/// Full configuration of the simulated machine.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Mesh width (cores per row).
    pub mesh_width: usize,
    /// Mesh height.
    pub mesh_height: usize,
    /// Private L1 data cache capacity in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: usize,
    /// Private L2 capacity in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// DRAM access latency in cycles (on top of network transit).
    pub memory_latency: u64,
    /// Network timing parameters.
    pub network: LatencyModel,
    /// Number of VMs.
    pub n_vms: usize,
    /// vCPUs per VM.
    pub vcpus_per_vm: u16,
    /// Sharing-type TLB slots per core.
    pub tlb_slots: usize,
    /// Scaled cycles per simulated millisecond. The reproduction's traces
    /// are far shorter than real benchmark runs, so wall-clock quantities
    /// (migration periods, removal periods) use a scaled clock chosen to
    /// keep the ratio of migration period to cache-refill/removal time
    /// faithful: a counter-driven core removal takes ~240k cycles here,
    /// i.e. ~1.6 scaled ms, matching the sub-10ms removals of Fig. 9; see
    /// DESIGN.md.
    pub cycles_per_ms: u64,
    /// Cycles consumed per access slot per core (issue rate).
    pub cycles_per_access: u64,
}

impl SystemConfig {
    /// The paper's simulated 16-core system (Table II), with four 4-vCPU
    /// VMs (Section V-A).
    pub fn paper_default() -> Self {
        SystemConfig {
            mesh_width: 4,
            mesh_height: 4,
            l1_bytes: 32 * 1024,
            l1_ways: 4,
            l2_bytes: 256 * 1024,
            l2_ways: 8,
            l1_latency: 2,
            l2_latency: 10,
            memory_latency: 80,
            network: LatencyModel::default(),
            n_vms: 4,
            vcpus_per_vm: 4,
            tlb_slots: 64,
            cycles_per_ms: 200_000,
            cycles_per_access: 2,
        }
    }

    /// A scaled-down configuration for fast unit tests: 4 cores, 2 VMs,
    /// tiny caches.
    pub fn small_test() -> Self {
        SystemConfig {
            mesh_width: 2,
            mesh_height: 2,
            l1_bytes: 2 * 1024,
            l1_ways: 2,
            l2_bytes: 8 * 1024,
            l2_ways: 4,
            n_vms: 2,
            vcpus_per_vm: 2,
            cycles_per_ms: 2_000,
            ..Self::paper_default()
        }
    }

    /// Total number of cores.
    pub fn n_cores(&self) -> usize {
        self.mesh_width * self.mesh_height
    }

    /// Total vCPUs across all VMs.
    pub fn n_vcpus(&self) -> usize {
        self.n_vms * self.vcpus_per_vm as usize
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.mesh_width == 0 || self.mesh_height == 0 {
            return Err(ConfigError::new(format!(
                "mesh dimensions must be positive (got {}x{})",
                self.mesh_width, self.mesh_height
            )));
        }
        if self.n_cores() > 64 {
            return Err(ConfigError::new(format!(
                "core count must be in 1..=64 (got {}x{} = {} cores)",
                self.mesh_width,
                self.mesh_height,
                self.n_cores()
            )));
        }
        if self.n_vcpus() > self.n_cores() {
            return Err(ConfigError::new(
                "overcommitted configurations are not supported by the trace simulator",
            ));
        }
        if self.n_vms == 0 {
            return Err(ConfigError::new("need at least one VM"));
        }
        if self.cycles_per_access == 0 || self.cycles_per_ms == 0 {
            return Err(ConfigError::new("clock rates must be positive"));
        }
        if self.l1_bytes >= self.l2_bytes {
            return Err(ConfigError::new("L1 must be smaller than L2"));
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A configuration constraint violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigError(std::borrow::Cow<'static, str>);

impl ConfigError {
    /// Creates a violation from a static or formatted description.
    pub fn new(msg: impl Into<std::borrow::Cow<'static, str>>) -> Self {
        ConfigError(msg.into())
    }

    /// The violated constraint, human-readable.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid system configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_ii() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.n_cores(), 16);
        assert_eq!(c.l1_bytes, 32 * 1024);
        assert_eq!(c.l2_bytes, 256 * 1024);
        assert_eq!(c.l2_ways, 8);
        assert_eq!(c.network.router_cycles, 4);
        assert_eq!(c.network.link_bytes, 16);
        assert_eq!(c.n_vcpus(), 16);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn small_test_is_valid() {
        assert!(SystemConfig::small_test().validate().is_ok());
    }

    #[test]
    fn validation_catches_overcommit() {
        let c = SystemConfig {
            n_vms: 8,
            vcpus_per_vm: 4,
            ..SystemConfig::paper_default()
        };
        assert!(c.validate().is_err());
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("overcommitted"));
    }

    #[test]
    fn validation_catches_degenerate_caches() {
        let c = SystemConfig {
            l1_bytes: 1 << 20,
            ..SystemConfig::paper_default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_names_zero_mesh_dimensions() {
        let c = SystemConfig {
            mesh_width: 0,
            mesh_height: 4,
            ..SystemConfig::paper_default()
        };
        let msg = c.validate().unwrap_err().to_string();
        assert!(
            msg.contains("0x4"),
            "message must name the dimensions: {msg}"
        );
    }

    #[test]
    fn validation_names_oversized_mesh() {
        let c = SystemConfig {
            mesh_width: 9,
            mesh_height: 8,
            ..SystemConfig::paper_default()
        };
        let msg = c.validate().unwrap_err().to_string();
        assert!(
            msg.contains("9x8 = 72"),
            "message must name the shape: {msg}"
        );
    }
}

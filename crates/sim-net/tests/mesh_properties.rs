//! Gated behind the `proptest` feature: run with `cargo test --features proptest`.
#![cfg(feature = "proptest")]

//! Property-based tests of the mesh topology and traffic accounting.

use proptest::prelude::*;
use sim_net::{Mesh, MessageKind, Network, NodeId, TrafficStats};

proptest! {
    #[test]
    fn hops_form_a_metric(
        w in 1usize..8, h in 1usize..8,
        a in 0u16..64, b in 0u16..64, c in 0u16..64,
    ) {
        let m = Mesh::new(w, h);
        let n = (w * h) as u16;
        let (a, b, c) = (NodeId::new(a % n), NodeId::new(b % n), NodeId::new(c % n));
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(m.hops(a, a), 0);
        prop_assert_eq!(m.hops(a, b), m.hops(b, a));
        prop_assert!(m.hops(a, c) <= m.hops(a, b) + m.hops(b, c));
        // Bounded by the mesh diameter.
        prop_assert!(m.hops(a, b) as usize <= (w - 1) + (h - 1));
    }

    #[test]
    fn coords_roundtrip(w in 1usize..8, h in 1usize..8) {
        let m = Mesh::new(w, h);
        for node in m.nodes() {
            let (x, y) = m.coords(node);
            prop_assert_eq!(m.node_at(x, y), node);
        }
    }

    #[test]
    fn nearest_port_minimizes_distance(w in 2usize..6, h in 2usize..6, i in 0u16..36) {
        let m = Mesh::new(w, h);
        let node = NodeId::new(i % (w * h) as u16);
        let ports = m.corner_ports();
        let chosen = m.nearest_port(node, &ports);
        for &p in &ports {
            prop_assert!(m.hops(node, chosen) <= m.hops(node, p));
        }
    }

    #[test]
    fn traffic_is_additive(
        msgs in prop::collection::vec((0usize..6, 0u32..12), 0..60),
    ) {
        let kinds = MessageKind::ALL;
        let mut all = TrafficStats::default();
        let mut first = TrafficStats::default();
        let mut second = TrafficStats::default();
        for (i, &(k, hops)) in msgs.iter().enumerate() {
            all.record(kinds[k], hops);
            if i % 2 == 0 {
                first.record(kinds[k], hops);
            } else {
                second.record(kinds[k], hops);
            }
        }
        first.merge(&second);
        prop_assert_eq!(first.byte_links(), all.byte_links());
        prop_assert_eq!(first.messages(), all.messages());
        // Per-kind totals also agree.
        for k in MessageKind::ALL {
            prop_assert_eq!(first.byte_links_of(k), all.byte_links_of(k));
        }
    }

    #[test]
    fn batched_record_matches_naive_per_unicast(
        k in 0usize..6,
        hops in prop::collection::vec(0u32..12, 0..40),
    ) {
        let kind = MessageKind::ALL[k % MessageKind::ALL.len()];
        // Naive model: every destination of a multicast is its own
        // unicast, recorded one at a time.
        let mut naive = TrafficStats::default();
        for &h in &hops {
            naive.record(kind, h);
        }
        // Batched form: one call with the hop total and message count.
        let mut batched = TrafficStats::default();
        batched.record_batch(
            kind,
            hops.iter().map(|&h| u64::from(h)).sum(),
            hops.len() as u64,
        );
        // `bytes * sum(hops) == sum(bytes * hops)` exactly in u64, so the
        // whole statistics block must be identical, not merely close.
        prop_assert_eq!(batched, naive);
    }

    #[test]
    fn multicast_traffic_equals_sum_of_unicasts(
        w in 2usize..5, h in 2usize..5,
        src in 0u16..25,
        mask in 0u32..u32::MAX,
    ) {
        let m = Mesh::new(w, h);
        let n = (w * h) as u16;
        let src = NodeId::new(src % n);
        let dests: Vec<NodeId> = (0..n)
            .filter(|&i| i != src.index() as u16 && mask & (1 << (i % 32)) != 0)
            .map(NodeId::new)
            .collect();

        let mut net_multi = Network::new(m);
        net_multi.multicast(src, dests.iter().copied(), MessageKind::Request);

        let mut net_uni = Network::new(m);
        for &d in &dests {
            net_uni.unicast(src, d, MessageKind::Request);
        }
        prop_assert_eq!(
            net_multi.traffic().byte_links(),
            net_uni.traffic().byte_links()
        );
    }
}

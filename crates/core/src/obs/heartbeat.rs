//! Periodic background emitter with a *bounded* join.
//!
//! The campaign supervisor and the simulation service both want a
//! heartbeat: a side thread that emits a telemetry record every
//! interval while the main thread does real work. The subtle part is
//! shutdown. A detached heartbeat thread outlives its campaign — a
//! short-lived embedder leaks one thread per campaign, and a tick can
//! race the process teardown and write into a trace directory that is
//! already being removed. A plain `JoinHandle::join`, on the other
//! hand, blocks forever if the tick closure wedges (say, on a full
//! disk).
//!
//! [`Heartbeat`] splits the difference: stopping signals the thread
//! through a condvar (it wakes immediately, not at the next interval),
//! then waits a bounded time for the thread to acknowledge. If the
//! thread does not finish in time it is detached — the embedder's
//! shutdown is never held hostage — but the common case is a clean
//! join within microseconds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long [`Heartbeat::stop`] (and `Drop`) waits for the tick thread
/// to acknowledge before detaching it.
const JOIN_TIMEOUT: Duration = Duration::from_secs(2);

/// A named background thread that runs a tick closure every interval
/// until stopped; stop/drop joins it with a bounded timeout. See the
/// module docs for why the bound matters.
pub struct Heartbeat {
    stop: Arc<(Mutex<bool>, Condvar)>,
    finished: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    label: &'static str,
}

impl Heartbeat {
    /// Spawns the tick thread. `tick` runs once per `interval` (never
    /// concurrently with itself); the first tick happens one interval
    /// after the spawn, and stopping wakes the thread immediately
    /// rather than letting it sleep out the current interval.
    pub fn spawn(
        label: &'static str,
        interval: Duration,
        mut tick: impl FnMut() + Send + 'static,
    ) -> Heartbeat {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let finished = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_finished = Arc::clone(&finished);
        let handle = std::thread::Builder::new()
            .name(format!("vsnoop-heartbeat-{label}"))
            .spawn(move || {
                let (lock, cvar) = &*thread_stop;
                let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if *stopped {
                        break;
                    }
                    let (guard, timeout) = cvar
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    if *stopped {
                        break;
                    }
                    if timeout.timed_out() {
                        // Tick outside the lock so a slow tick cannot
                        // block the stop signal itself (only the join).
                        drop(stopped);
                        tick();
                        stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                    }
                }
                drop(stopped);
                thread_finished.store(true, Ordering::Release);
            })
            .expect("spawn heartbeat thread");
        Heartbeat {
            stop,
            finished,
            handle: Some(handle),
            label,
        }
    }

    /// Stops the thread and joins it, waiting at most a bounded grace
    /// for a wedged tick. Returns `true` on a clean join, `false` if
    /// the thread had to be detached (a warning is emitted to stderr —
    /// it indicates a tick stuck in IO, not a correctness problem).
    pub fn stop(mut self) -> bool {
        self.stop_inner()
    }

    fn stop_inner(&mut self) -> bool {
        let Some(handle) = self.handle.take() else {
            return true;
        };
        {
            let (lock, cvar) = &*self.stop;
            *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
            cvar.notify_all();
        }
        // `JoinHandle::join` has no timeout, so bound it by hand: the
        // thread's very last action is setting `finished`, after which
        // the real join cannot block meaningfully.
        let deadline = Instant::now() + JOIN_TIMEOUT;
        while !self.finished.load(Ordering::Acquire) {
            if Instant::now() >= deadline {
                eprintln!(
                    "warning: heartbeat '{}' did not stop within {:?}; detaching it",
                    self.label, JOIN_TIMEOUT
                );
                drop(handle);
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let _ = handle.join();
        true
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ticks_periodically_and_joins_cleanly() {
        let ticks = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&ticks);
        let hb = Heartbeat::spawn("test", Duration::from_millis(1), move || {
            t.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(hb.stop(), "clean join");
        let n = ticks.load(Ordering::SeqCst);
        assert!(n >= 2, "expected several ticks in 50 ms, got {n}");
        // No more ticks after stop.
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(ticks.load(Ordering::SeqCst), n);
    }

    #[test]
    fn stop_does_not_wait_out_a_long_interval() {
        let hb = Heartbeat::spawn("slow-interval", Duration::from_secs(3600), || {});
        let start = Instant::now();
        assert!(hb.stop());
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "stop must interrupt the interval sleep, not wait it out"
        );
    }

    #[test]
    fn drop_joins_without_stop() {
        let ticks = Arc::new(AtomicU64::new(0));
        let t = Arc::clone(&ticks);
        {
            let _hb = Heartbeat::spawn("dropped", Duration::from_millis(1), move || {
                t.fetch_add(1, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(10));
        }
        let after_drop = ticks.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(
            ticks.load(Ordering::SeqCst),
            after_drop,
            "drop must stop the thread"
        );
    }
}

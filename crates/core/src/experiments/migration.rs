//! Figs. 7, 8, 9 — the effect of VM relocation.
//!
//! "As an approximate method to simulate the migration effect, we shuffle
//! the locations of two vCPUs periodically" (Section V-C): every period,
//! two vCPUs from *different* VMs swap cores. The experiment sweeps
//! periods of 5 / 2.5 / 0.5 / 0.1 (scaled) milliseconds over three
//! virtual-snooping variants, reporting total snoops normalized to the
//! TokenB baseline (which, with an identical trace, performs exactly
//! `16 x misses` lookups). Fig. 9 reports the CDF of the *removal period*:
//! the time from a vCPU's departure until the counter mechanism evicts the
//! old core from the VM's map.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim_vm::{VcpuId, VmId};
use workloads::{simulation_apps, AppProfile};

use crate::config::SystemConfig;
use crate::experiments::common::RunScale;
use crate::experiments::warm::{self, CellSpec};
use crate::policy::{ContentPolicy, FilterPolicy};
use crate::runner::scatter;
use crate::simulator::Simulator;

/// One bar of Fig. 7/8.
#[derive(Clone, Debug)]
pub struct MigrationPoint {
    /// Application name.
    pub name: &'static str,
    /// Migration period in scaled milliseconds.
    pub period_ms: f64,
    /// The virtual-snooping variant measured.
    pub policy: FilterPolicy,
    /// Total snoops relative to the TokenB baseline, percent (ideal 25%).
    pub norm_snoops_pct: f64,
}

/// A removal-period sample for the Fig. 9 CDF, in cycles.
#[derive(Clone, Copy, Debug)]
pub struct RemovalSample {
    /// Application name.
    pub name: &'static str,
    /// Measured removal period in cycles.
    pub period_cycles: u64,
}

/// The paper's three virtual snooping variants for Figs. 7-8.
pub fn migration_policies() -> [FilterPolicy; 3] {
    [
        FilterPolicy::VsnoopBase,
        FilterPolicy::Counter,
        FilterPolicy::COUNTER_THRESHOLD_10,
    ]
}

fn make_picker(cfg: SystemConfig, seed: u64) -> impl FnMut(u64) -> (VcpuId, VcpuId) {
    let mut rng = SmallRng::seed_from_u64(seed);
    move |_| {
        let vm_a = rng.gen_range(0..cfg.n_vms);
        let mut vm_b = rng.gen_range(0..cfg.n_vms - 1);
        if vm_b >= vm_a {
            vm_b += 1;
        }
        let a = VcpuId::new(VmId::new(vm_a as u16), rng.gen_range(0..cfg.vcpus_per_vm));
        let b = VcpuId::new(VmId::new(vm_b as u16), rng.gen_range(0..cfg.vcpus_per_vm));
        (a, b)
    }
}

/// Runs one app under one policy with periodic cross-VM shuffles and
/// returns the simulator for inspection. The warm-up (pinned, no
/// migrations yet) comes from the process-wide warm pool, exactly like
/// [`crate::experiments::run_pinned`].
pub(crate) fn run_migrating(
    app: &'static AppProfile,
    policy: FilterPolicy,
    period_ms: f64,
    cfg: SystemConfig,
    scale: RunScale,
) -> Simulator {
    let (mut sim, mut wl) = warm::warmed_pair(
        app,
        policy,
        ContentPolicy::Broadcast,
        false,
        false,
        cfg,
        scale,
    );
    let period_cycles = ((period_ms * cfg.cycles_per_ms as f64) as u64).max(1);
    sim.reset_measurement();
    // The run stands in for one finite application execution: it must
    // cover at least eight migration periods, and callers pass a
    // migration-sized window (see `RunScale::for_migration`) so the maps
    // experience many removal timescales. The floor is capped at 16x the
    // requested window so deliberately tiny scales (differential guards,
    // smoke tests) stay tiny; at the quick and full campaign scales the
    // cap is far above the floor and the run length is unchanged.
    let min_rounds = 8 * period_cycles / cfg.cycles_per_access;
    let rounds = scale
        .measure_rounds
        .max(min_rounds.min(scale.measure_rounds.saturating_mul(16)));
    let picker = make_picker(cfg, scale.seed ^ 0x51A9);
    sim.run_with_migration(&mut wl, rounds, period_cycles, picker);
    sim
}

/// Runs the Fig. 7/8 sweep for the given periods (paper: 5/2.5 in Fig. 7,
/// 0.5/0.1 in Fig. 8).
///
/// The `app x period x policy` cells are independent, so they are fanned
/// out over [`scatter`]'s shard pool (order-preserving: the output is
/// byte-identical to the serial nested loop) and memoized, so Fig. 9 —
/// which re-runs this sweep's counter cells — simulates them once.
pub fn migration_sweep(periods_ms: &[f64], scale: RunScale) -> Vec<MigrationPoint> {
    let cfg = SystemConfig::paper_default();
    let mut cells = Vec::new();
    for app in simulation_apps() {
        for &period_ms in periods_ms {
            for policy in migration_policies() {
                cells.push((app, period_ms, policy));
            }
        }
    }
    scatter(cells, |(app, period_ms, policy)| {
        let r = warm::cell(&CellSpec {
            app,
            policy,
            content_policy: ContentPolicy::Broadcast,
            content_sharing: false,
            host_activity: false,
            cfg,
            scale,
            migration_period_ms: Some(period_ms),
        });
        // TokenB on the same trace performs n_cores lookups per
        // transaction.
        let baseline = r.stats.l2_misses.max(1) * cfg.n_cores() as u64;
        MigrationPoint {
            name: app.name,
            period_ms,
            policy,
            norm_snoops_pct: 100.0 * r.stats.snoops as f64 / baseline as f64,
        }
    })
}

/// Runs the Fig. 9 experiment: removal-period samples under the counter
/// mechanism with a 5 (scaled) ms migration period.
///
/// The cells here are a subset of the Fig. 7 sweep's, so with reuse
/// enabled they come straight from the memo when Fig. 7 ran first (and
/// vice versa).
pub fn removal_periods(scale: RunScale) -> Vec<RemovalSample> {
    let cfg = SystemConfig::paper_default();
    let per_app = scatter(simulation_apps(), |app| {
        let r = warm::cell(&CellSpec {
            app,
            policy: FilterPolicy::Counter,
            content_policy: ContentPolicy::Broadcast,
            content_sharing: false,
            host_activity: false,
            cfg,
            scale,
            migration_period_ms: Some(5.0),
        });
        r.removal_log
            .iter()
            .filter_map(|e| {
                e.period.map(|p| RemovalSample {
                    name: app.name,
                    period_cycles: p,
                })
            })
            .collect::<Vec<_>>()
    });
    per_app.into_iter().flatten().collect()
}

/// Empirical CDF helper: returns `(x, fraction <= x)` pairs for plotting.
pub fn cdf(samples: &mut [u64]) -> Vec<(u64, f64)> {
    samples.sort_unstable();
    let n = samples.len().max(1) as f64;
    samples
        .iter()
        .enumerate()
        .map(|(i, &x)| (x, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunScale {
        // Counter-driven removals take ~120k rounds (= ~8 scaled ms), so
        // the migration tests must run several multiples of that to reach
        // the steady state Figs. 7-8 report.
        RunScale {
            warmup_rounds: 20_000,
            measure_rounds: 350_000,
            seed: 0xC0FFEE,
        }
    }

    #[test]
    fn counter_beats_base_under_fast_migration() {
        let cfg = SystemConfig::paper_default();
        let app = workloads::profile("ocean").unwrap();
        let base = run_migrating(app, FilterPolicy::VsnoopBase, 0.1, cfg, tiny());
        let counter = run_migrating(app, FilterPolicy::Counter, 0.1, cfg, tiny());
        let norm = |sim: &Simulator| {
            let s = sim.stats();
            s.snoops as f64 / (s.l2_misses.max(1) * 16) as f64
        };
        let nb = norm(&base);
        let nc = norm(&counter);
        assert!(
            nc < nb,
            "counter ({nc:.2}) must filter more than vsnoop-base ({nb:.2}) at 0.1ms"
        );
        assert!(
            nb > 0.5,
            "base should have decayed badly at 0.1ms (got {nb:.2})"
        );
    }

    #[test]
    fn slow_migration_stays_near_ideal_with_counter() {
        let cfg = SystemConfig::paper_default();
        let app = workloads::profile("lu").unwrap();
        // 1 ms period: several removal timescales per period, but cheap
        // enough for a unit test (the bench binaries run the paper's 5 ms).
        let sim = run_migrating(app, FilterPolicy::Counter, 1.0, cfg, tiny());
        let s = sim.stats();
        let norm = s.snoops as f64 / (s.l2_misses.max(1) * 16) as f64;
        assert!(
            norm < 0.40,
            "counter at 1ms should stay near the ideal 25% (got {:.1}%)",
            norm * 100.0
        );
    }

    #[test]
    fn removal_periods_are_positive_and_logged() {
        let samples = {
            let cfg = SystemConfig::paper_default();
            let app = workloads::profile("ocean").unwrap();
            let sim = run_migrating(app, FilterPolicy::Counter, 0.5, cfg, tiny());
            sim.removal_log().to_vec()
        };
        assert!(!samples.is_empty(), "expected some removals");
    }

    #[test]
    fn cdf_is_monotonic() {
        let mut xs = vec![5u64, 1, 3, 3, 9];
        let c = cdf(&mut xs);
        assert_eq!(c.first().unwrap().0, 1);
        assert_eq!(c.last().unwrap().0, 9);
        assert!((c.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn picker_always_crosses_vm_boundaries() {
        let cfg = SystemConfig::paper_default();
        let mut pick = make_picker(cfg, 42);
        for i in 0..200 {
            let (a, b) = pick(i);
            assert_ne!(a.vm(), b.vm());
        }
    }
}

//! Synthetic workload generation for the *virtual snooping* reproduction.
//!
//! The paper drives its coherence simulator with SPLASH-2 / PARSEC /
//! SPECjbb execution traces and its real-hardware study with PARSEC, OLTP
//! and SPECweb; none of those binaries (nor Simics) are available here, so
//! this crate provides parameterized trace generators whose first-order
//! statistics are calibrated to the per-application numbers the paper
//! reports (Fig. 1, Table I, Table V). See `DESIGN.md` for the
//! substitution rationale and `profiles` for the calibration constants.
//!
//! # Examples
//!
//! ```
//! use workloads::{Workload, WorkloadConfig, profile, AccessStream};
//! use sim_vm::{VcpuId, VmId};
//!
//! // Four VMs all running canneal, with content-based sharing enabled.
//! let cfg = WorkloadConfig { content_sharing: true, ..Default::default() };
//! let mut wl = Workload::homogeneous(profile("canneal").unwrap(), 4, cfg);
//! let access = wl.next_access(VcpuId::new(VmId::new(0), 0));
//! assert!(access.addr % 64 == 0); // block-aligned
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod profiles;
mod replay;
mod trace;
mod workload;
mod zipf;

pub use profiles::{
    content_apps, fig1_apps, parsec_apps, profile, simulation_apps, try_profile, AppProfile,
    PaperTargets, ProfileError, SchedParams, Suite, TraceParams, PROFILES,
};
pub use replay::{RecordedTrace, TraceRecorder, TraceReplayer};
pub use trace::{AccessStream, TraceAccess};
pub use workload::{sched_vms, to_behavior, Workload, WorkloadConfig};
pub use zipf::ZipfSampler;

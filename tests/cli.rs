//! Integration tests of the `vsnoop-sim` command-line tool.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_vsnoop-sim"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn lists_all_registered_applications() {
    let (stdout, _, ok) = run(&["--list-apps"]);
    assert!(ok);
    for app in ["cholesky", "fft", "canneal", "SPECweb", "OLTP"] {
        assert!(stdout.lines().any(|l| l == app), "missing {app}");
    }
    assert_eq!(stdout.lines().count(), workloads::PROFILES.len());
}

#[test]
fn runs_a_small_simulation_and_reports() {
    let (stdout, _, ok) = run(&[
        "--app", "radix", "--policy", "vsnoop", "--rounds", "2000", "--warmup", "1000",
    ]);
    assert!(ok, "simulation run failed: {stdout}");
    assert!(stdout.contains("radix x4 VMs"));
    assert!(stdout.contains("snoop tag lookups"));
    assert!(stdout.contains("25.0% of a 16-core broadcast"));
    assert!(stdout.contains("VM3 snoop domain"));
}

#[test]
fn parses_counter_threshold_with_value() {
    let (stdout, _, ok) = run(&[
        "--app",
        "lu",
        "--policy",
        "counter-threshold:25",
        "--rounds",
        "500",
        "--warmup",
        "100",
    ]);
    assert!(ok);
    assert!(stdout.contains("counter-threshold(25)"));
}

#[test]
fn rejects_unknown_app_and_bad_policy() {
    let (_, stderr, ok) = run(&["--app", "doom"]);
    assert!(!ok);
    assert!(stderr.contains("unknown application"));
    let (_, stderr, ok) = run(&["--policy", "psychic"]);
    assert!(!ok);
    assert!(
        stderr.contains("usage:"),
        "bad policy should print usage: {stderr}"
    );
}

#[test]
fn rejects_invalid_vm_count() {
    let (_, stderr, ok) = run(&["--vms", "9"]);
    assert!(!ok);
    assert!(stderr.contains("overcommitted"), "got: {stderr}");
}

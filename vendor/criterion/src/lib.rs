//! Vendored, offline stand-in for the subset of `criterion` 0.5 the
//! workspace's benches use. The workspace maps the `criterion` dependency
//! name onto this package, so `benches/*.rs` compile unchanged with **no
//! network or registry access**.
//!
//! It is a simple wall-clock harness: each benchmark warms up briefly,
//! picks an iteration count targeting ~0.5 s of measurement, and prints the
//! mean time per iteration (plus throughput when configured). No statistics,
//! plotting, or baselines — `cargo bench` output is meant for eyeballing
//! relative cost, not for publication.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The measured routine processes this many logical elements.
    Elements(u64),
    /// The measured routine processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, like upstream.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to the closure given to `bench_function`; `iter` runs and times
/// the routine.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50 ms have elapsed to stabilise caches and
        // estimate the per-iteration cost.
        let warmup = Duration::from_millis(50);
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let est = start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        // Measurement: target ~500 ms.
        let target_ns = 500_000_000.0;
        let iters = ((target_ns / est.max(1.0)) as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("{name:<50} {:>12}/iter", human_time(ns));
    if let Some(t) = throughput {
        let per_sec = |n: u64| n as f64 * 1_000_000_000.0 / ns.max(1e-9);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.2} Melem/s", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.2} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benches in the group.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.ns_per_iter,
            self.throughput,
        );
        self.criterion.benches_run += 1;
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.ns_per_iter,
            self.throughput,
        );
        self.criterion.benches_run += 1;
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benches_run: u64,
}

impl Criterion {
    /// Parses command-line arguments. This shim accepts and ignores the
    /// flags `cargo bench` forwards (e.g. `--bench`, filters).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(name, b.ns_per_iter, None);
        self.benches_run += 1;
        self
    }

    /// Final summary hook, called by [`criterion_main!`].
    pub fn final_summary(&self) {
        println!("ran {} benchmarks", self.benches_run);
    }
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| black_box(1u64 + 1));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn id_formats_like_upstream() {
        assert_eq!(BenchmarkId::new("round", 16).to_string(), "round/16");
    }
}

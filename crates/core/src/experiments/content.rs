//! Table V, Fig. 10, Table VI — content-based page sharing (Section VI).
//!
//! Four VMs run the same application with an ideal dedup scan folding
//! identical pages onto read-only canonical copies. Table V measures how
//! much of the access/miss stream touches those pages; Fig. 10 compares
//! the three content-routing optimizations against broadcasting; Table VI
//! decomposes, for each content-shared read miss, who could have supplied
//! the data.

use workloads::{content_apps, AppProfile};

use crate::config::SystemConfig;
use crate::experiments::common::RunScale;
use crate::experiments::warm::{self, CellResult, CellSpec};
use crate::policy::{ContentPolicy, FilterPolicy};
use crate::runner::scatter;
use std::sync::Arc;

/// The shared content cell: base virtual snooping with broadcast routing
/// over the dedup'd page set. Table V, Table VI and Fig. 10's broadcast
/// bars all consume this one cell per application (memoized, so it is
/// simulated once per campaign).
fn content_broadcast_cell(
    app: &'static AppProfile,
    cfg: SystemConfig,
    scale: RunScale,
) -> Arc<CellResult> {
    warm::cell(&CellSpec {
        app,
        policy: FilterPolicy::VsnoopBase,
        content_policy: ContentPolicy::Broadcast,
        content_sharing: true,
        host_activity: false,
        cfg,
        scale,
        migration_period_ms: None,
    })
}

/// One row of Table V.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// Application name.
    pub name: &'static str,
    /// Content-shared share of L1 accesses, percent.
    pub access_pct: f64,
    /// Content-shared share of L2 misses, percent.
    pub miss_pct: f64,
    /// Paper's access share.
    pub paper_access_pct: Option<f64>,
    /// Paper's miss share.
    pub paper_miss_pct: Option<f64>,
}

/// Runs Table V: content-shared access and miss ratios. One shard per
/// application.
pub fn table5(scale: RunScale) -> Vec<Table5Row> {
    let cfg = SystemConfig::paper_default();
    scatter(content_apps(), |app| {
        let r = content_broadcast_cell(app, cfg, scale);
        Table5Row {
            name: app.name,
            access_pct: 100.0 * r.stats.content_access_fraction(),
            miss_pct: 100.0 * r.stats.content_miss_fraction(),
            paper_access_pct: app.targets.table5_access_pct,
            paper_miss_pct: app.targets.table5_miss_pct,
        }
    })
}

/// One bar of Fig. 10.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    /// Application name.
    pub name: &'static str,
    /// Content routing policy.
    pub policy: ContentPolicy,
    /// Total snoops relative to TokenB, percent.
    pub norm_snoops_pct: f64,
}

/// Runs Fig. 10: measured snoops per content policy, normalized to the
/// TokenB baseline (`16 x misses` on the same trace). One shard per
/// `app x policy` cell; the broadcast cells are shared with Table V/VI.
pub fn fig10(scale: RunScale) -> Vec<Fig10Row> {
    let cfg = SystemConfig::paper_default();
    let mut cells = Vec::new();
    for app in content_apps() {
        for policy in ContentPolicy::ALL {
            cells.push((app, policy));
        }
    }
    scatter(cells, |(app, policy)| {
        let r = if policy == ContentPolicy::Broadcast {
            content_broadcast_cell(app, cfg, scale)
        } else {
            warm::cell(&CellSpec {
                app,
                policy: FilterPolicy::VsnoopBase,
                content_policy: policy,
                content_sharing: true,
                host_activity: false,
                cfg,
                scale,
                migration_period_ms: None,
            })
        };
        let baseline = r.stats.l2_misses.max(1) * cfg.n_cores() as u64;
        Fig10Row {
            name: app.name,
            policy,
            norm_snoops_pct: 100.0 * r.stats.snoops as f64 / baseline as f64,
        }
    })
}

/// One column of Table VI.
#[derive(Clone, Debug)]
pub struct Table6Row {
    /// Application name.
    pub name: &'static str,
    /// Share of content-shared read misses with a valid copy in *some*
    /// cache, percent.
    pub cache_all_pct: f64,
    /// ... with a copy within the requesting VM's own caches.
    pub cache_intra_pct: f64,
    /// ... with no intra-VM copy but one in the friend VM's caches.
    pub cache_friend_pct: f64,
    /// ... with no cached copy at all (memory is the only holder).
    pub memory_pct: f64,
}

/// Runs Table VI: potential data holders for content-shared misses,
/// measured under broadcast routing (so the sharing pattern is
/// policy-independent).
pub fn table6(scale: RunScale) -> Vec<Table6Row> {
    let cfg = SystemConfig::paper_default();
    scatter(content_apps(), |app| {
        let r = content_broadcast_cell(app, cfg, scale);
        let s = &r.stats;
        let total = (s.holders_any_cache + s.holders_memory).max(1) as f64;
        Table6Row {
            name: app.name,
            cache_all_pct: 100.0 * s.holders_any_cache as f64 / total,
            cache_intra_pct: 100.0 * s.holders_intra_vm as f64 / total,
            cache_friend_pct: 100.0 * s.holders_friend_vm as f64 / total,
            memory_pct: 100.0 * s.holders_memory as f64 / total,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_orders_apps_like_the_paper() {
        let rows = table5(RunScale::quick());
        assert_eq!(rows.len(), 9);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        // The heavy content users have much larger access shares than the
        // light ones.
        assert!(get("blackscholes").access_pct > get("ocean").access_pct);
        assert!(get("canneal").access_pct > get("lu").access_pct);
        // radix accesses content a lot but misses on it almost never.
        let radix = get("radix");
        assert!(
            radix.access_pct > 10.0 && radix.miss_pct < 6.0,
            "radix: {radix:?}"
        );
        // fft misses on content far out of proportion to its accesses.
        let fft = get("fft");
        assert!(fft.miss_pct > fft.access_pct);
    }

    #[test]
    fn fig10_policy_ordering() {
        let rows = fig10(RunScale::quick());
        assert_eq!(rows.len(), 9 * 4);
        // For a content-heavy app, memory-direct <= intra-VM <= friend-VM
        // <= broadcast in snoop count.
        let get = |n: &str, p: ContentPolicy| {
            rows.iter()
                .find(|r| r.name == n && r.policy == p)
                .unwrap()
                .norm_snoops_pct
        };
        for app in ["blackscholes", "canneal"] {
            let b = get(app, ContentPolicy::Broadcast);
            let m = get(app, ContentPolicy::MemoryDirect);
            let i = get(app, ContentPolicy::IntraVm);
            let f = get(app, ContentPolicy::FriendVm);
            assert!(m <= i + 0.5, "{app}: memory-direct {m:.1} vs intra {i:.1}");
            assert!(i <= f + 0.5, "{app}: intra {i:.1} vs friend {f:.1}");
            assert!(f < b, "{app}: friend {f:.1} vs broadcast {b:.1}");
        }
    }

    #[test]
    fn table6_shares_are_consistent() {
        let rows = table6(RunScale::quick());
        for r in &rows {
            assert!(
                (r.cache_all_pct + r.memory_pct - 100.0).abs() < 1e-6,
                "{}: cache+memory must cover everything",
                r.name
            );
            assert!(
                r.cache_intra_pct + r.cache_friend_pct <= r.cache_all_pct + 1e-6,
                "{}: intra+friend cannot exceed all-cache share",
                r.name
            );
        }
    }
}

//! End-to-end tests for the multi-tenant simulation service: real TCP
//! connections against [`vsnoop::service::serve`] with synthetic job
//! factories.
//!
//! The robustness contract under test: every request gets a typed
//! answer (overload sheds, deadlines time out, drains cancel), the
//! drain finishes in bounded time no matter what jobs do, `scatter`
//! shards inside a running job observe the drain's cancellation, and
//! everything terminal lands in the journal.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vsnoop::runner::{json::Value, poll_current, scatter, Job, JobError, Journal};
use vsnoop::service::{
    serve, JobFactory, Response, Server, ServiceConfig, Submit, TenantQuota, Wal, WalRecord,
};

/// A scratch directory unique to one test, cleaned before use.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vsnoop-service-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Starts a server on an ephemeral port.
fn start(factory: JobFactory, cfg: ServiceConfig) -> Server {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    serve(listener, factory, cfg).expect("serve")
}

/// One client connection with line-oriented send/receive and a
/// generous read deadline so a server bug fails the test instead of
/// hanging it.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(server: &Server) -> Conn {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let writer = stream.try_clone().expect("clone");
        Conn {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> Response {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) => panic!("server closed the connection"),
                Ok(_) if line.trim().is_empty() => continue,
                Ok(_) => return Response::parse(line.trim()).expect("parse response"),
                Err(e) => panic!("read: {e}"),
            }
        }
    }

    /// Receives until a terminal (`done`/`shed`/`error`) response,
    /// skipping `accepted` acks.
    fn recv_terminal(&mut self) -> Response {
        loop {
            match self.recv() {
                Response::Accepted { .. } => continue,
                other => return other,
            }
        }
    }

    fn submit(&mut self, tenant: &str, job: &str, deadline_ms: Option<u64>, tag: &str) {
        let mut pairs = vec![
            ("op", Value::Str("submit".into())),
            ("tenant", Value::Str(tenant.into())),
            ("job", Value::Str(job.into())),
            ("tag", Value::Str(tag.into())),
        ];
        if let Some(d) = deadline_ms {
            pairs.push(("deadline_ms", Value::UInt(d)));
        }
        let line = Value::obj(pairs).to_json();
        self.send(&line);
    }

    /// Like [`Conn::submit`], with an idempotency key attached.
    fn submit_keyed(&mut self, tenant: &str, job: &str, key: &str, tag: &str) {
        let line = Value::obj(vec![
            ("op", Value::Str("submit".into())),
            ("tenant", Value::Str(tenant.into())),
            ("job", Value::Str(job.into())),
            ("tag", Value::Str(tag.into())),
            ("idem_key", Value::Str(key.into())),
        ])
        .to_json();
        self.send(&line);
    }
}

/// A factory of synthetic jobs:
///
/// - `"quick"`: returns immediately;
/// - `"poll"`: polls its token forever (ends only by cancellation);
/// - `"scatter"`: fans 8 forever-polling shards out through
///   [`scatter`], flipping `started` once the shards are running;
/// - anything else: a factory error.
fn test_factory(started: Arc<AtomicBool>) -> JobFactory {
    Arc::new(move |submit: &Submit| {
        let started = Arc::clone(&started);
        match submit.job.as_str() {
            "quick" => Ok(Job::new("quick", 1, Value::obj(vec![]), |_ctx| {
                Ok("quick output\n".to_string())
            })),
            "poll" => Ok(Job::new("poll", 2, Value::obj(vec![]), move |_ctx| {
                started.store(true, Ordering::SeqCst);
                loop {
                    poll_current();
                    std::thread::sleep(Duration::from_millis(2));
                }
            })),
            "scatter" => Ok(Job::new("scatter", 3, Value::obj(vec![]), move |_ctx| {
                let started = Arc::clone(&started);
                // Each shard polls forever; the `loop` (type `!`) is the
                // shard's "result", so only cancellation ends the job.
                let outputs: Vec<u64> = scatter((0..8u64).collect::<Vec<_>>(), move |i| {
                    started.store(true, Ordering::SeqCst);
                    let _ = i;
                    loop {
                        poll_current();
                        std::thread::sleep(Duration::from_millis(2));
                    }
                });
                Ok(format!("{outputs:?}\n"))
            })),
            other => Err(format!("unknown test job {other:?}")),
        }
    })
}

fn wait_for(flag: &AtomicBool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !flag.load(Ordering::SeqCst) {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn submit_over_tcp_returns_accepted_then_done() {
    let server = start(test_factory(Arc::default()), ServiceConfig::default());
    let mut conn = Conn::open(&server);

    conn.submit("acme", "quick", None, "t0");
    match conn.recv() {
        Response::Accepted { tag, .. } => assert_eq!(tag.as_deref(), Some("t0")),
        other => panic!("expected accepted, got {other:?}"),
    }
    match conn.recv() {
        Response::Done { outcome, tag, .. } => {
            assert_eq!(outcome.expect("job must succeed"), "quick output\n");
            assert_eq!(tag.as_deref(), Some("t0"));
        }
        other => panic!("expected done, got {other:?}"),
    }

    server.shutdown();
    let report = server.wait();
    assert_eq!(report.done, 1);
    assert_eq!(report.shed, 0);
}

#[test]
fn malformed_lines_get_typed_errors_and_the_connection_survives() {
    let server = start(test_factory(Arc::default()), ServiceConfig::default());
    let mut conn = Conn::open(&server);

    for bad in [
        "not json at all",
        "{}",
        r#"{"op":"warp"}"#,
        r#"{"op":"submit","tenant":"","job":"quick"}"#,
    ] {
        conn.send(bad);
        match conn.recv() {
            Response::Error { .. } => {}
            other => panic!("{bad:?}: expected error, got {other:?}"),
        }
    }
    // Unknown job names are factory errors, also typed.
    conn.submit("acme", "no-such-job", None, "t1");
    match conn.recv() {
        Response::Error { tag, .. } => assert_eq!(tag.as_deref(), Some("t1")),
        other => panic!("expected error, got {other:?}"),
    }
    // The connection is still usable afterwards.
    conn.send(r#"{"op":"ping"}"#);
    assert_eq!(conn.recv(), Response::Pong);

    server.shutdown();
    let report = server.wait();
    assert_eq!(report.done, 0, "nothing was ever admitted");
}

#[test]
fn overload_sheds_typed_per_tenant_and_globally() {
    let started = Arc::new(AtomicBool::new(false));
    let cfg = ServiceConfig {
        workers: 1,
        queue_cap: 3,
        quota: TenantQuota {
            max_inflight: 1,
            max_queued: 2,
            max_queued_bytes: 1 << 20,
        },
        drain_grace: Duration::from_millis(100),
        cancel_grace: Duration::from_secs(5),
        ..ServiceConfig::default()
    };
    let server = start(test_factory(Arc::clone(&started)), cfg);
    let mut conn = Conn::open(&server);

    // Occupy the single worker slot, then wait until it is actually
    // running so later submits genuinely queue behind it.
    conn.submit("a", "poll", None, "blocker");
    match conn.recv() {
        Response::Accepted { .. } => {}
        other => panic!("expected accepted, got {other:?}"),
    }
    wait_for(&started, "the blocker job to start");

    // Tenant "a" can queue two more, then hits its per-tenant quota.
    let mut sheds = Vec::new();
    for i in 0..3 {
        conn.submit("a", "quick", None, &format!("a{i}"));
        match conn.recv() {
            Response::Accepted { .. } => {}
            Response::Shed {
                reason, retryable, ..
            } => {
                assert!(retryable, "load sheds must invite a retry");
                sheds.push(reason);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(sheds, ["tenant_queue_full"]);

    // The global queue (cap 3) now holds 2; tenant "b" gets one in and
    // then hits the global cap.
    let mut b_sheds = Vec::new();
    for i in 0..2 {
        conn.submit("b", "quick", None, &format!("b{i}"));
        match conn.recv() {
            Response::Accepted { .. } => {}
            Response::Shed { reason, .. } => b_sheds.push(reason),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(b_sheds, ["queue_full"]);

    // Drain: the blocker is cancelled, the queued jobs are evicted, and
    // every accepted submit still gets its terminal `done` line.
    server.shutdown();
    let mut terminal = 0;
    while terminal < 4 {
        match conn.recv() {
            Response::Done { .. } => terminal += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    let report = server.wait();
    assert_eq!(report.done, 4, "blocker + 3 queued");
    assert_eq!(report.shed, 2);
}

#[test]
fn deadline_cancels_job_as_timeout() {
    let started = Arc::new(AtomicBool::new(false));
    let cfg = ServiceConfig {
        cancel_grace: Duration::from_secs(5),
        ..ServiceConfig::default()
    };
    let server = start(test_factory(Arc::clone(&started)), cfg);
    let mut conn = Conn::open(&server);

    conn.submit("acme", "poll", Some(150), "t");
    let t0 = Instant::now();
    match conn.recv_terminal() {
        Response::Done { outcome, .. } => {
            let (kind, message) = outcome.expect_err("the poll job cannot succeed");
            assert_eq!(kind, "timeout");
            assert!(message.contains("150"), "deadline in message: {message}");
        }
        other => panic!("expected done, got {other:?}"),
    }
    // Cooperative cancellation: the job polls, so it unwinds right
    // after the deadline — long before the abandon path (5s) would.
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "timeout took {:?}",
        t0.elapsed()
    );

    server.shutdown();
    server.wait();
}

/// Satellite: a drain must cut through `scatter` fan-outs. The running
/// job's shards each poll the job token that the service cancelled, so
/// the whole fan-out unwinds within the drain + cancel grace — and the
/// journal records the partial campaign: completed jobs as `ok`, the
/// cancelled job and the evicted queued job as `cancelled`.
#[test]
fn drain_cancels_scatter_shards_within_grace_and_journals_partials() {
    let dir = scratch("drain-scatter");
    let journal_path = dir.join("service.jsonl");
    vsnoop::runner::set_shard_workers(4);

    let started = Arc::new(AtomicBool::new(false));
    let cfg = ServiceConfig {
        workers: 1,
        drain_grace: Duration::from_millis(150),
        cancel_grace: Duration::from_secs(10),
        journal_path: Some(journal_path.clone()),
        ..ServiceConfig::default()
    };
    let server = start(test_factory(Arc::clone(&started)), cfg);
    let mut conn = Conn::open(&server);

    // A completed job, a running scatter job, and a queued job.
    conn.submit("acme", "quick", None, "done-first");
    match conn.recv_terminal() {
        Response::Done { outcome, .. } => assert!(outcome.is_ok()),
        other => panic!("unexpected {other:?}"),
    }
    conn.submit("acme", "scatter", None, "sharded");
    match conn.recv() {
        Response::Accepted { .. } => {}
        other => panic!("expected accepted, got {other:?}"),
    }
    wait_for(&started, "scatter shards to start");
    conn.submit("acme", "quick", None, "stuck-in-queue");
    match conn.recv() {
        Response::Accepted { .. } => {}
        other => panic!("expected accepted, got {other:?}"),
    }

    // Drain. The shards poll every ~2ms, so the fan-out must unwind
    // right after drain_grace expires — nowhere near the 10s abandon
    // window, which is the proof the shards *observed* the token.
    let t0 = Instant::now();
    server.shutdown();
    let mut outcomes = Vec::new();
    while outcomes.len() < 2 {
        match conn.recv() {
            Response::Done { outcome, tag, .. } => {
                outcomes.push((tag.unwrap_or_default(), outcome));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(4),
        "drain took {elapsed:?}; shards did not observe cancellation within grace"
    );
    for (tag, outcome) in &outcomes {
        let (kind, message) = outcome.clone().expect_err("drained jobs are cancelled");
        assert_eq!(kind, "cancelled", "{tag}: {message}");
        assert!(
            !message.contains("abandoned"),
            "{tag} was abandoned instead of unwinding: {message}"
        );
    }

    let report = server.wait();
    assert_eq!(report.done, 3);
    assert_eq!(report.cancelled, 2, "one running, one evicted");

    // The journal holds the partial campaign.
    let (entries, warnings) = Journal::load_with_warnings(&journal_path).expect("journal loads");
    assert!(warnings.is_empty(), "clean journal: {warnings:?}");
    assert_eq!(entries.len(), 3);
    let by_name = |name: &str| {
        entries
            .iter()
            .find(|e| e.job == name)
            .unwrap_or_else(|| panic!("journal entry for {name}"))
    };
    assert_eq!(by_name("quick").outcome.as_deref(), Ok("quick output\n"));
    assert!(matches!(
        by_name("scatter").outcome,
        Err(JobError::Cancelled { .. })
    ));
    let evicted = entries
        .iter()
        .filter(|e| matches!(&e.outcome, Err(JobError::Cancelled { reason }) if reason.contains("evicted")))
        .count();
    assert_eq!(evicted, 1, "the queued job was journaled as evicted");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn subscriber_sees_job_lifecycle_telemetry() {
    let server = start(test_factory(Arc::default()), ServiceConfig::default());

    let mut sub = Conn::open(&server);
    sub.send(r#"{"op":"subscribe"}"#);
    assert_eq!(sub.recv(), Response::Subscribed);

    let mut conn = Conn::open(&server);
    conn.submit("acme", "quick", None, "t");
    match conn.recv_terminal() {
        Response::Done { outcome, .. } => assert!(outcome.is_ok()),
        other => panic!("unexpected {other:?}"),
    }

    // The subscriber connection now carries raw telemetry records; the
    // submit must have produced the admit → dispatch → done sequence.
    let mut seen = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !seen.contains(&"service_done".to_string()) {
        assert!(Instant::now() < deadline, "telemetry not seen: {seen:?}");
        let mut line = String::new();
        match sub.reader.read_line(&mut line) {
            Ok(0) => panic!("subscriber connection closed"),
            Ok(_) => {
                let v = Value::parse(line.trim()).expect("telemetry is valid JSON");
                if let Some(event) = v.get("event").and_then(Value::as_str) {
                    seen.push(event.to_string());
                }
            }
            Err(e) => panic!("subscriber read: {e}"),
        }
    }
    for expected in ["service_admit", "service_dispatch", "service_done"] {
        assert!(
            seen.contains(&expected.to_string()),
            "missing {expected} in {seen:?}"
        );
    }

    server.shutdown();
    server.wait();
}

#[test]
fn shutdown_op_drains_and_sheds_late_submits_as_draining() {
    let started = Arc::new(AtomicBool::new(false));
    let cfg = ServiceConfig {
        workers: 1,
        drain_grace: Duration::from_millis(300),
        cancel_grace: Duration::from_secs(5),
        ..ServiceConfig::default()
    };
    let server = start(test_factory(Arc::clone(&started)), cfg);
    let mut conn = Conn::open(&server);

    // Keep one job running so the drain stays observable while the
    // late submit goes in.
    conn.submit("acme", "poll", None, "blocker");
    match conn.recv() {
        Response::Accepted { .. } => {}
        other => panic!("expected accepted, got {other:?}"),
    }
    wait_for(&started, "the blocker job to start");

    conn.send(r#"{"op":"shutdown"}"#);
    assert_eq!(conn.recv(), Response::ShuttingDown);

    // Wait until the scheduler has flipped admission into draining, so
    // the late submit's outcome is deterministic.
    loop {
        conn.send(r#"{"op":"status"}"#);
        let Response::Status(v) = conn.recv() else {
            panic!("expected status")
        };
        if v.get("draining").and_then(Value::as_bool) == Some(true) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    conn.submit("late", "quick", None, "late");
    match conn.recv() {
        Response::Shed {
            reason, retryable, ..
        } => {
            assert_eq!(reason, "draining");
            assert!(!retryable, "a draining server is going away; don't retry");
        }
        other => panic!("unexpected {other:?}"),
    }

    // The blocker still gets its terminal answer.
    match conn.recv() {
        Response::Done { outcome, .. } => {
            let (kind, _) = outcome.expect_err("drained job is cancelled");
            assert_eq!(kind, "cancelled");
        }
        other => panic!("unexpected {other:?}"),
    }
    let report = server.wait();
    assert_eq!(report.done, 1);
    assert_eq!(report.shed, 1);
    assert_eq!(report.cancelled, 1);
}

/// Tentpole: a WAL left by a crashed process (an `accepted` record
/// with no terminal `done`) is replayed on startup — the job runs to
/// a durable terminal outcome under its original id, numbering
/// resumes above the high-water mark, and completions retained by the
/// WAL keep answering idempotent resubmissions from before the crash.
#[test]
fn restart_replays_wal_pending_jobs_and_keeps_idempotency() {
    let dir = scratch("wal-recovery");
    let wal_path = dir.join("wal.jsonl");
    let journal_path = dir.join("journal.jsonl");

    // Hand-write the log of a crashed server: job 3 finished (keyed,
    // so its completion is retained for dedup), job 7 was accepted but
    // never reached a terminal record.
    let crashed = [
        WalRecord::Accepted {
            job_id: 3,
            tenant: "acme".into(),
            job: "quick".into(),
            params: Value::Null,
            deadline_ms: None,
            idem_key: Some("k-done".into()),
            bytes: 10,
        },
        WalRecord::Done {
            job_id: 3,
            outcome: Ok("old output\n".into()),
        },
        WalRecord::Accepted {
            job_id: 7,
            tenant: "acme".into(),
            job: "quick".into(),
            params: Value::Null,
            deadline_ms: None,
            idem_key: Some("k-pending".into()),
            bytes: 10,
        },
    ];
    let mut text = String::new();
    for r in &crashed {
        text.push_str(&r.to_json_line());
        text.push('\n');
    }
    std::fs::write(&wal_path, text).expect("seed wal");

    let cfg = ServiceConfig {
        wal_path: Some(wal_path.clone()),
        journal_path: Some(journal_path.clone()),
        ..ServiceConfig::default()
    };
    let server = start(test_factory(Arc::default()), cfg);
    let mut conn = Conn::open(&server);

    // The crashed completion still answers its idempotency key — with
    // the original output, not a re-execution.
    conn.submit_keyed("acme", "quick", "k-done", "replay");
    match conn.recv() {
        Response::Accepted { job_id, tag } => {
            assert_eq!(job_id, 3);
            assert_eq!(tag.as_deref(), Some("replay"));
        }
        other => panic!("expected accepted, got {other:?}"),
    }
    match conn.recv() {
        Response::Done {
            job_id, outcome, ..
        } => {
            assert_eq!(job_id, 3);
            assert_eq!(outcome.expect("replayed ok"), "old output\n");
        }
        other => panic!("expected done, got {other:?}"),
    }

    // A resubmission of the *recovered* job dedups against it too
    // (whether it is still in flight or already finished), and never
    // runs it a second time.
    conn.submit_keyed("acme", "quick", "k-pending", "dup");
    match conn.recv() {
        Response::Accepted { job_id, .. } => assert_eq!(job_id, 7),
        other => panic!("expected accepted, got {other:?}"),
    }
    match conn.recv() {
        Response::Done {
            job_id,
            outcome,
            tag,
            ..
        } => {
            assert_eq!(job_id, 7);
            assert_eq!(outcome.expect("recovered job succeeds"), "quick output\n");
            assert_eq!(tag.as_deref(), Some("dup"));
        }
        other => panic!("expected done, got {other:?}"),
    }

    // Fresh submissions number above the recovered high-water mark.
    conn.submit("acme", "quick", None, "fresh");
    match conn.recv() {
        Response::Accepted { job_id, .. } => {
            assert!(
                job_id > 7,
                "id {job_id} must not collide with recovered ids"
            );
        }
        other => panic!("expected accepted, got {other:?}"),
    }
    match conn.recv_terminal() {
        Response::Done { outcome, .. } => assert!(outcome.is_ok()),
        other => panic!("expected done, got {other:?}"),
    }

    server.shutdown();
    let report = server.wait();
    assert_eq!(report.recovered, 1, "exactly job 7 was re-enqueued");

    // The journal holds the recovered job's terminal outcome under its
    // original id, exactly once.
    let entries = Journal::load(&journal_path).expect("journal loads");
    let for_seven: Vec<_> = entries.iter().filter(|e| e.index == 7).collect();
    assert_eq!(for_seven.len(), 1, "{entries:?}");
    assert!(for_seven[0].outcome.is_ok());

    // And the final WAL has no pending work left: nothing was lost.
    let state = Wal::replay(&wal_path).expect("wal replays");
    assert!(state.pending.is_empty(), "{:?}", state.pending);
    assert!(state.max_job_id > 7);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole: a duplicate submit with the same idempotency key — the
/// retry of a client that never saw its answer — executes the job
/// once. The duplicate gets the original result, echoed under its own
/// tag, even from a different connection; a duplicate that lands while
/// the job is still in flight is parked and answered on completion.
#[test]
fn idempotent_resubmission_executes_once_and_answers_every_caller() {
    let dir = scratch("idem-once");
    let executions = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let release = Arc::new(AtomicBool::new(false));
    let started = Arc::new(AtomicBool::new(false));
    let factory: JobFactory = {
        let (executions, release, started) = (
            Arc::clone(&executions),
            Arc::clone(&release),
            Arc::clone(&started),
        );
        Arc::new(move |submit: &Submit| {
            let (executions, release, started) = (
                Arc::clone(&executions),
                Arc::clone(&release),
                Arc::clone(&started),
            );
            match submit.job.as_str() {
                "gated" => Ok(Job::new("gated", 1, Value::obj(vec![]), move |_ctx| {
                    executions.fetch_add(1, Ordering::SeqCst);
                    started.store(true, Ordering::SeqCst);
                    while !release.load(Ordering::SeqCst) {
                        poll_current();
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Ok("gated output\n".to_string())
                })),
                other => Err(format!("unknown test job {other:?}")),
            }
        })
    };
    let cfg = ServiceConfig {
        wal_path: Some(dir.join("wal.jsonl")),
        ..ServiceConfig::default()
    };
    let server = start(factory, cfg);

    let mut first = Conn::open(&server);
    first.submit_keyed("acme", "gated", "the-key", "first");
    let original_id = match first.recv() {
        Response::Accepted { job_id, .. } => job_id,
        other => panic!("expected accepted, got {other:?}"),
    };
    wait_for(&started, "the gated job to start");

    // Duplicate while in flight, from a second connection: parked, not
    // re-executed.
    let mut second = Conn::open(&server);
    second.submit_keyed("acme", "gated", "the-key", "second");
    match second.recv() {
        Response::Accepted { job_id, tag } => {
            assert_eq!(job_id, original_id, "the duplicate maps to the same job");
            assert_eq!(tag.as_deref(), Some("second"));
        }
        other => panic!("expected accepted, got {other:?}"),
    }

    release.store(true, Ordering::SeqCst);
    for (conn, tag) in [(&mut first, "first"), (&mut second, "second")] {
        match conn.recv() {
            Response::Done {
                job_id,
                outcome,
                tag: got,
                ..
            } => {
                assert_eq!(job_id, original_id);
                assert_eq!(outcome.expect("job succeeds"), "gated output\n");
                assert_eq!(got.as_deref(), Some(tag), "each caller keeps its own tag");
            }
            other => panic!("{tag}: expected done, got {other:?}"),
        }
    }

    // Duplicate after completion: replayed from the idempotency map.
    let mut third = Conn::open(&server);
    third.submit_keyed("acme", "gated", "the-key", "third");
    match third.recv() {
        Response::Accepted { job_id, .. } => assert_eq!(job_id, original_id),
        other => panic!("expected accepted, got {other:?}"),
    }
    match third.recv() {
        Response::Done { outcome, tag, .. } => {
            assert_eq!(outcome.expect("replayed ok"), "gated output\n");
            assert_eq!(tag.as_deref(), Some("third"));
        }
        other => panic!("expected done, got {other:?}"),
    }

    assert_eq!(
        executions.load(Ordering::SeqCst),
        1,
        "three submits, one execution"
    );
    server.shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: a request line longer than `max_frame_bytes` is answered
/// with a typed, non-retryable `oversized_frame` error — one error for
/// the whole frame, however many reads it spanned — and the connection
/// stays usable for well-behaved frames afterwards.
#[test]
fn oversized_frames_get_typed_error_and_the_connection_survives() {
    let cfg = ServiceConfig {
        max_frame_bytes: 1024,
        ..ServiceConfig::default()
    };
    let server = start(test_factory(Arc::default()), cfg);
    let mut conn = Conn::open(&server);

    // 64 KiB of garbage on one line: far past the cap, so the server
    // must stream it to the floor rather than buffer it.
    let huge = "x".repeat(64 * 1024);
    conn.send(&huge);
    match conn.recv() {
        Response::Error {
            code,
            retryable,
            message,
            ..
        } => {
            assert_eq!(code.as_deref(), Some("oversized_frame"), "{message}");
            assert!(!retryable, "resending an oversized frame cannot help");
        }
        other => panic!("expected error, got {other:?}"),
    }

    // Exactly one error for the frame, and the connection still works.
    conn.send(r#"{"op":"ping"}"#);
    assert_eq!(conn.recv(), Response::Pong);
    conn.submit("acme", "quick", None, "after");
    match conn.recv_terminal() {
        Response::Done { outcome, .. } => assert!(outcome.is_ok()),
        other => panic!("expected done, got {other:?}"),
    }

    server.shutdown();
    server.wait();
}

/// Satellite: a subscriber that stops reading cannot wedge the server.
/// Its pump buffer is bounded; on overflow the server disconnects the
/// subscriber with a typed `subscriber_lagged` error instead of
/// blocking telemetry emitters or buffering without bound.
#[test]
fn lagged_subscriber_is_disconnected_with_typed_error() {
    let cfg = ServiceConfig {
        sub_buffer: 4,
        ..ServiceConfig::default()
    };
    let server = start(test_factory(Arc::default()), cfg);

    let mut sub = Conn::open(&server);
    sub.send(r#"{"op":"subscribe"}"#);
    assert_eq!(sub.recv(), Response::Subscribed);

    // Burst far more telemetry than the 4-record buffer holds while
    // the subscriber reads nothing. Emits are microseconds apart, so
    // the pump — a socket write per record, eventually blocking on the
    // unread socket — cannot keep up, and the tap must drop to the
    // lagged path rather than block this (emitting) thread.
    for i in 0..50_000u64 {
        vsnoop::obs::telemetry::emit("spam", vec![("i", Value::UInt(i))]);
    }

    // The subscriber's stream: buffered telemetry records, then the
    // typed error. (The TCP connection itself stays open — only the
    // subscription is dropped.)
    let mut saw_lagged = false;
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut line = String::new();
    while !saw_lagged {
        assert!(Instant::now() < deadline, "no lagged error seen");
        line.clear();
        match sub.reader.read_line(&mut line) {
            Ok(0) => panic!("connection closed without the typed error"),
            Ok(_) if line.trim().is_empty() => continue,
            Ok(_) => {
                let v = Value::parse(line.trim()).expect("valid JSON on subscriber stream");
                if v.get("type").and_then(Value::as_str) == Some("error") {
                    assert_eq!(
                        v.get("code").and_then(Value::as_str),
                        Some("subscriber_lagged"),
                        "{line}"
                    );
                    assert_eq!(
                        v.get("retryable").and_then(Value::as_bool),
                        Some(true),
                        "resubscribing is allowed: {line}"
                    );
                    saw_lagged = true;
                }
            }
            Err(e) => panic!("subscriber read: {e}"),
        }
    }

    // The server itself is unaffected.
    let mut conn = Conn::open(&server);
    conn.send(r#"{"op":"ping"}"#);
    assert_eq!(conn.recv(), Response::Pong);
    conn.submit("acme", "quick", None, "after");
    match conn.recv_terminal() {
        Response::Done { outcome, .. } => assert!(outcome.is_ok()),
        other => panic!("unexpected {other:?}"),
    }

    server.shutdown();
    server.wait();
}

/// Tentpole: one connection pipelines a batch of submits without
/// waiting for answers. The reactor assembles the frames in arrival
/// order, the admission thread preserves that order, and a single
/// worker executes them FIFO — so both the `accepted` acks and the
/// `done` results come back in submit order on the one socket.
#[test]
fn pipelined_submits_on_one_connection_answer_in_order() {
    let cfg = ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    };
    let server = start(test_factory(Arc::default()), cfg);
    let mut conn = Conn::open(&server);

    let tags: Vec<String> = (0..6).map(|i| format!("p{i}")).collect();
    for tag in &tags {
        conn.submit("acme", "quick", None, tag);
    }

    let mut accepted = Vec::new();
    let mut done = Vec::new();
    while done.len() < tags.len() {
        match conn.recv() {
            Response::Accepted { tag, .. } => accepted.push(tag.unwrap_or_default()),
            Response::Done { outcome, tag, .. } => {
                assert!(outcome.is_ok());
                done.push(tag.unwrap_or_default());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(accepted, tags, "acks follow submit order");
    assert_eq!(done, tags, "one worker answers FIFO");

    server.shutdown();
    let report = server.wait();
    assert_eq!(report.done, 6);
}

/// Tentpole: submits pipelined past the per-connection cap are shed
/// with the typed retryable `pipeline_full` reason, while the ones
/// under the cap still run to completion.
#[test]
fn pipelining_past_the_cap_sheds_typed_pipeline_full() {
    let started = Arc::new(AtomicBool::new(false));
    let cfg = ServiceConfig {
        workers: 1,
        pipeline_limit: 2,
        drain_grace: Duration::from_millis(150),
        cancel_grace: Duration::from_secs(5),
        ..ServiceConfig::default()
    };
    let server = start(test_factory(Arc::clone(&started)), cfg);
    let mut conn = Conn::open(&server);

    // Fill both pipeline slots: a running blocker plus one queued job.
    conn.submit("acme", "poll", None, "blocker");
    match conn.recv() {
        Response::Accepted { .. } => {}
        other => panic!("expected accepted, got {other:?}"),
    }
    wait_for(&started, "the blocker job to start");
    conn.submit("acme", "quick", None, "queued");
    match conn.recv() {
        Response::Accepted { .. } => {}
        other => panic!("expected accepted, got {other:?}"),
    }

    // The third in-flight submit overflows the connection's pipeline.
    conn.submit("acme", "quick", None, "over");
    match conn.recv() {
        Response::Shed {
            reason,
            retryable,
            tag,
            ..
        } => {
            assert_eq!(reason, "pipeline_full");
            assert!(retryable, "a full pipeline invites a retry after reading");
            assert_eq!(tag.as_deref(), Some("over"));
        }
        other => panic!("expected shed, got {other:?}"),
    }

    // Both admitted jobs still reach terminal answers on the drain.
    server.shutdown();
    let mut terminal = 0;
    while terminal < 2 {
        match conn.recv() {
            Response::Done { .. } => terminal += 1,
            other => panic!("unexpected {other:?}"),
        }
    }
    let report = server.wait();
    assert_eq!(report.done, 2);
}

/// Tentpole: a running job streams `progress` frames to its submitting
/// connection between `accepted` and `done` when a cadence is
/// configured.
#[test]
fn long_running_job_streams_progress_frames_mid_flight() {
    let started = Arc::new(AtomicBool::new(false));
    let cfg = ServiceConfig {
        progress_interval: Duration::from_millis(25),
        cancel_grace: Duration::from_secs(5),
        ..ServiceConfig::default()
    };
    let server = start(test_factory(Arc::clone(&started)), cfg);
    let mut conn = Conn::open(&server);

    // A poll job with a 300 ms deadline: runs long enough for several
    // progress ticks, then times out to a terminal `done`.
    conn.submit("acme", "poll", Some(300), "t");
    let mut progress = 0u32;
    let mut saw_accept = false;
    loop {
        match conn.recv() {
            Response::Accepted { .. } => saw_accept = true,
            Response::Progress {
                job, elapsed_ms, ..
            } => {
                assert!(saw_accept, "progress must follow the accepted ack");
                assert_eq!(job, "poll");
                assert!(elapsed_ms > 0, "elapsed time is measured");
                progress += 1;
            }
            Response::Done { outcome, .. } => {
                let (kind, _) = outcome.expect_err("the poll job times out");
                assert_eq!(kind, "timeout");
                break;
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    assert!(
        progress >= 1,
        "a 300ms job at a 25ms cadence must stream progress"
    );

    server.shutdown();
    server.wait();
}

/// Tentpole: a connection with no traffic and no in-flight work is
/// reaped after the idle timeout with a typed retryable `idle_timeout`
/// error, while a connection whose job is still running is kept alive
/// no matter how long it stays quiet.
#[test]
fn idle_connections_are_reaped_but_busy_ones_survive() {
    let started = Arc::new(AtomicBool::new(false));
    let cfg = ServiceConfig {
        workers: 1,
        idle_timeout: Duration::from_millis(150),
        drain_grace: Duration::from_millis(150),
        cancel_grace: Duration::from_secs(5),
        ..ServiceConfig::default()
    };
    let server = start(test_factory(Arc::clone(&started)), cfg);

    // Busy connection: its poll job keeps it exempt from reaping.
    let mut busy = Conn::open(&server);
    busy.submit("acme", "poll", None, "blocker");
    match busy.recv() {
        Response::Accepted { .. } => {}
        other => panic!("expected accepted, got {other:?}"),
    }
    wait_for(&started, "the blocker job to start");

    // Idle connection: reaped with the typed error, then closed.
    let mut idle = Conn::open(&server);
    match idle.recv() {
        Response::Error {
            code,
            retryable,
            message,
            ..
        } => {
            assert_eq!(code.as_deref(), Some("idle_timeout"), "{message}");
            assert!(retryable, "reconnecting after an idle reap is fine");
        }
        other => panic!("expected idle_timeout error, got {other:?}"),
    }
    let mut rest = String::new();
    assert_eq!(
        idle.reader.read_line(&mut rest).expect("read to EOF"),
        0,
        "the reaped connection is closed after the error: {rest:?}"
    );

    // The busy connection sat just as quiet but still answers.
    busy.send(r#"{"op":"ping"}"#);
    assert_eq!(busy.recv(), Response::Pong);

    server.shutdown();
    match busy.recv() {
        Response::Done { outcome, .. } => {
            let (kind, _) = outcome.expect_err("drained job is cancelled");
            assert_eq!(kind, "cancelled");
        }
        other => panic!("unexpected {other:?}"),
    }
    server.wait();
}

/// Tentpole: a drain with hundreds of parked connections — open,
/// idle, nothing in flight — walks the reactor's connection table
/// instead of joining per-connection threads: every parked socket is
/// closed promptly, the one running job still reaches its terminal
/// answer, and the whole shutdown is far faster than any per-
/// connection timeout.
#[test]
fn drain_closes_hundreds_of_parked_connections_promptly() {
    let started = Arc::new(AtomicBool::new(false));
    let cfg = ServiceConfig {
        workers: 1,
        drain_grace: Duration::from_millis(200),
        cancel_grace: Duration::from_secs(5),
        ..ServiceConfig::default()
    };
    let server = start(test_factory(Arc::clone(&started)), cfg);

    let mut active = Conn::open(&server);
    active.submit("acme", "poll", None, "blocker");
    match active.recv() {
        Response::Accepted { .. } => {}
        other => panic!("expected accepted, got {other:?}"),
    }
    wait_for(&started, "the blocker job to start");

    // A ping/pong roundtrip proves each connection made it out of the
    // accept backlog and into the reactor's table before we drain —
    // connections still queued on the listener when it closes get a
    // kernel RST, which is not what this test is about.
    let parked: Vec<Conn> = (0..300)
        .map(|_| {
            let mut conn = Conn::open(&server);
            conn.send(r#"{"op":"ping"}"#);
            assert_eq!(conn.recv(), Response::Pong);
            conn
        })
        .collect();

    let t0 = Instant::now();
    server.shutdown();
    match active.recv() {
        Response::Done { outcome, .. } => {
            let (kind, _) = outcome.expect_err("drained job is cancelled");
            assert_eq!(kind, "cancelled");
        }
        other => panic!("unexpected {other:?}"),
    }
    // Every parked connection sees a clean close, not a hang or reset.
    for (i, mut conn) in parked.into_iter().enumerate() {
        let mut line = String::new();
        assert_eq!(
            conn.reader.read_line(&mut line).expect("read to EOF"),
            0,
            "parked connection {i} got unexpected data: {line:?}"
        );
    }
    let report = server.wait();
    let elapsed = t0.elapsed();
    assert_eq!(report.done, 1);
    assert!(
        elapsed < Duration::from_secs(10),
        "drain of 300 parked connections took {elapsed:?}"
    );
}

/// Satellite: the `metrics` wire op returns the server-side metrics
/// snapshot, and its counts reconcile with what this connection
/// actually did. Metrics are process-global (other tests in this
/// binary record into them concurrently), so the per-tenant family —
/// keyed by a tenant name unique to this test — is checked exactly,
/// while the global counters are only checked as lower bounds.
#[test]
fn metrics_op_reports_counts_that_reconcile_with_submits() {
    let server = start(test_factory(Arc::default()), ServiceConfig::default());
    let mut conn = Conn::open(&server);

    let tenant = format!("metrics-reconcile-{}", std::process::id());
    const JOBS: u64 = 5;
    for i in 0..JOBS {
        conn.submit(&tenant, "quick", None, &format!("m{i}"));
        match conn.recv_terminal() {
            Response::Done { outcome, .. } => assert!(outcome.is_ok()),
            other => panic!("unexpected {other:?}"),
        }
    }

    conn.send(r#"{"op":"metrics"}"#);
    let snapshot = match conn.recv() {
        // The frame keeps the envelope; the snapshot sits under its
        // `metrics` key (same convention as `status`).
        Response::Metrics(v) => v.get("metrics").expect("snapshot embedded").clone(),
        other => panic!("expected metrics, got {other:?}"),
    };

    // Global counters: at least this test's traffic happened.
    let counter = |name: &str| {
        snapshot
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("counter {name} in {snapshot:?}"))
    };
    assert!(counter("requests") >= JOBS, "{snapshot:?}");
    assert!(counter("done") >= JOBS, "{snapshot:?}");

    // The per-tenant request-latency family reconciles exactly: one
    // recorded end-to-end latency per terminal submit.
    let tenant_hist = snapshot
        .get("tenants")
        .and_then(|t| t.get(&tenant))
        .and_then(|t| t.get("request"))
        .unwrap_or_else(|| panic!("tenant {tenant} in {snapshot:?}"));
    assert_eq!(
        tenant_hist.get("count").and_then(Value::as_u64),
        Some(JOBS),
        "{tenant_hist:?}"
    );
    let pct = |name: &str| {
        tenant_hist
            .get(name)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("{name} in {tenant_hist:?}"))
    };
    assert!(
        pct("p50_ms") <= pct("p99_ms") && pct("p99_ms") <= pct("max_ms"),
        "{tenant_hist:?}"
    );

    // The global stage histograms saw the same lifecycle stages.
    for stage in [
        "service_request_us",
        "service_run_us",
        "service_queue_wait_us",
    ] {
        let count = snapshot
            .get("histograms")
            .and_then(|h| h.get(stage))
            .and_then(|h| h.get("count"))
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("histogram {stage} in {snapshot:?}"));
        assert!(count >= JOBS, "{stage}: {count} < {JOBS}");
    }

    server.shutdown();
    let report = server.wait();
    assert_eq!(report.done, JOBS);
}

/// Tentpole: the reactor's incremental frame assembly — a request
/// torn into tiny writes with pauses in between (worst-case
/// nonblocking reads) still parses as exactly one frame, and several
/// frames landing in one read still each get an answer.
#[test]
fn torn_and_coalesced_frames_assemble_correctly() {
    let server = start(test_factory(Arc::default()), ServiceConfig::default());
    let mut conn = Conn::open(&server);

    // One submit dribbled out 5 bytes at a time across ~20 writes.
    let line = Value::obj(vec![
        ("op", Value::Str("submit".into())),
        ("tenant", Value::Str("acme".into())),
        ("job", Value::Str("quick".into())),
        ("tag", Value::Str("torn".into())),
    ])
    .to_json()
        + "\n";
    for chunk in line.as_bytes().chunks(5) {
        conn.writer.write_all(chunk).expect("write chunk");
        conn.writer.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(2));
    }
    match conn.recv() {
        Response::Accepted { tag, .. } => assert_eq!(tag.as_deref(), Some("torn")),
        other => panic!("expected accepted, got {other:?}"),
    }
    match conn.recv_terminal() {
        Response::Done { outcome, tag, .. } => {
            assert!(outcome.is_ok());
            assert_eq!(tag.as_deref(), Some("torn"));
        }
        other => panic!("expected done, got {other:?}"),
    }

    // Two pings and a submit coalesced into a single write: three
    // frames, three answers.
    let batch = "{\"op\":\"ping\"}\n{\"op\":\"ping\"}\n".to_string()
        + &Value::obj(vec![
            ("op", Value::Str("submit".into())),
            ("tenant", Value::Str("acme".into())),
            ("job", Value::Str("quick".into())),
            ("tag", Value::Str("batched".into())),
        ])
        .to_json()
        + "\n";
    conn.writer
        .write_all(batch.as_bytes())
        .expect("write batch");
    conn.writer.flush().expect("flush");
    assert_eq!(conn.recv(), Response::Pong);
    assert_eq!(conn.recv(), Response::Pong);
    match conn.recv_terminal() {
        Response::Done { outcome, tag, .. } => {
            assert!(outcome.is_ok());
            assert_eq!(tag.as_deref(), Some("batched"));
        }
        other => panic!("expected done, got {other:?}"),
    }

    server.shutdown();
    let report = server.wait();
    assert_eq!(report.done, 2);
}

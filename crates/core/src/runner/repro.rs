//! Self-contained crash reproducers.
//!
//! When a job fails terminally — panic, watchdog timeout, or a checker
//! violation the job reports as an error — the supervisor writes a
//! `repro-<job>.json` file holding everything needed to replay that one
//! job in isolation: name, seed, campaign parameters (run scale, fault
//! plan, …) and the deterministic step window. `--repro <file>` feeds it
//! back through the same job registry, closing the loop between the
//! campaign and a debugger-friendly single-job run.

use std::path::{Path, PathBuf};

use super::job::{JobError, JobSpec};
use super::json::Value;

/// A serialized crash reproducer.
#[derive(Clone, Debug, PartialEq)]
pub struct CrashReproducer {
    /// The failed job's spec (name, seed, params, step window).
    pub spec: JobSpec,
    /// Attempts consumed before giving up.
    pub attempts: u32,
    /// Stable error kind (`panic` / `timeout` / `failed`).
    pub error_kind: String,
    /// Human-readable error.
    pub error: String,
}

impl CrashReproducer {
    /// Builds a reproducer for a terminally failed job.
    pub fn new(spec: &JobSpec, attempts: u32, error: &JobError) -> Self {
        CrashReproducer {
            spec: spec.clone(),
            attempts,
            error_kind: error.kind().to_string(),
            error: error.to_string(),
        }
    }

    /// The deterministic file name for this reproducer:
    /// `repro-<job>.json`.
    pub fn file_name(job: &str) -> String {
        // Job names are short identifiers; keep the mapping trivial but
        // strip anything path-hostile just in case.
        let safe: String = job
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c == '_' || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("repro-{safe}.json")
    }

    /// Serializes to pretty-enough JSON (one object, deterministic).
    pub fn to_json(&self) -> String {
        let mut pairs = vec![
            ("job", Value::Str(self.spec.name.clone())),
            ("seed", Value::UInt(self.spec.seed)),
            ("params", self.spec.params.clone()),
        ];
        if let Some((start, end)) = self.spec.step_window {
            pairs.push((
                "step_window",
                Value::Arr(vec![Value::UInt(start), Value::UInt(end)]),
            ));
        }
        pairs.push(("attempts", Value::UInt(u64::from(self.attempts))));
        pairs.push(("error_kind", Value::Str(self.error_kind.clone())));
        pairs.push(("error", Value::Str(self.error.clone())));
        Value::obj(pairs).to_json()
    }

    /// Parses a reproducer file's contents.
    pub fn from_json(text: &str) -> Option<CrashReproducer> {
        let v = Value::parse(text).ok()?;
        let step_window = v.get("step_window").and_then(|w| {
            let arr = w.as_arr()?;
            Some((arr.first()?.as_u64()?, arr.get(1)?.as_u64()?))
        });
        Some(CrashReproducer {
            spec: JobSpec {
                name: v.get("job")?.as_str()?.to_string(),
                seed: v.get("seed")?.as_u64()?,
                params: v.get("params")?.clone(),
                step_window,
            },
            attempts: v.get("attempts")?.as_u64()? as u32,
            error_kind: v.get("error_kind")?.as_str()?.to_string(),
            error: v.get("error")?.as_str()?.to_string(),
        })
    }

    /// Writes the reproducer into `dir` under its deterministic name,
    /// returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(Self::file_name(&self.spec.name));
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }

    /// Loads a reproducer from a file.
    ///
    /// # Errors
    ///
    /// Returns an IO error for unreadable files and `InvalidData` for
    /// unparseable ones.
    pub fn load(path: &Path) -> std::io::Result<CrashReproducer> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("not a crash reproducer: {}", path.display()),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let spec = JobSpec {
            name: "fig7".into(),
            seed: 0xC0FFEE,
            params: Value::obj([(
                "scale",
                Value::obj([
                    ("warmup", Value::UInt(60_000)),
                    ("measure", Value::UInt(1_920_000)),
                ]),
            )]),
            step_window: Some((60_000, 1_980_000)),
        };
        let r = CrashReproducer::new(
            &spec,
            3,
            &JobError::Panicked {
                message: "point present".into(),
            },
        );
        let back = CrashReproducer::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.spec.step_window, Some((60_000, 1_980_000)));
        assert_eq!(back.error_kind, "panic");
    }

    #[test]
    fn file_names_are_deterministic_and_safe() {
        assert_eq!(CrashReproducer::file_name("fig1"), "repro-fig1.json");
        assert_eq!(
            CrashReproducer::file_name("weird/name x"),
            "repro-weird_name_x.json"
        );
    }

    #[test]
    fn writes_and_loads() {
        let dir = std::env::temp_dir().join(format!("vsnoop-repro-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = JobSpec {
            name: "table5".into(),
            seed: 9,
            params: Value::Null,
            step_window: None,
        };
        let r = CrashReproducer::new(&spec, 1, &JobError::TimedOut { limit_ms: 1000 });
        let path = r.write_to(&dir).unwrap();
        assert!(path.ends_with("repro-table5.json"));
        let back = CrashReproducer::load(&path).unwrap();
        assert_eq!(back, r);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Fig. 3 and Table I — pinning vs. full migration under the credit
//! scheduler.
//!
//! The paper's real-hardware study (Section III-B): eight physical cores;
//! an *undercommitted* system runs two 4-vCPU VMs, an *overcommitted* one
//! runs four. `no migration` pins vCPUs one-to-one; `full migration`
//! allows unrestricted stealing. Reported are normalized execution times
//! (Fig. 3) and the average vCPU relocation period (Table I).

use sim_vm::{run_scheduler, SchedPolicy, SchedulerConfig};
use workloads::{parsec_apps, sched_vms, AppProfile};

/// Results for one application.
#[derive(Clone, Debug)]
pub struct SchedRow {
    /// Application name.
    pub name: &'static str,
    /// Undercommitted makespan, pinned, ms.
    pub under_pinned_ms: f64,
    /// Undercommitted makespan, full migration, ms.
    pub under_full_ms: f64,
    /// Overcommitted makespan, pinned, ms.
    pub over_pinned_ms: f64,
    /// Overcommitted makespan, full migration, ms.
    pub over_full_ms: f64,
    /// Measured average relocation period under full migration,
    /// undercommitted, ms (Table I left column).
    pub reloc_under_ms: Option<f64>,
    /// ... overcommitted (Table I right column).
    pub reloc_over_ms: Option<f64>,
    /// Paper's Table I values for comparison.
    pub paper_under_ms: Option<f64>,
    /// Paper's Table I values for comparison.
    pub paper_over_ms: Option<f64>,
}

impl SchedRow {
    /// Fig. 3(a): execution times normalized to the slower policy,
    /// undercommitted — `(no_migration_pct, full_migration_pct)`.
    pub fn under_normalized(&self) -> (f64, f64) {
        normalize(self.under_pinned_ms, self.under_full_ms)
    }

    /// Fig. 3(b): normalized execution times, overcommitted.
    pub fn over_normalized(&self) -> (f64, f64) {
        normalize(self.over_pinned_ms, self.over_full_ms)
    }
}

fn normalize(pinned: f64, full: f64) -> (f64, f64) {
    let worst = pinned.max(full).max(1e-9);
    (100.0 * pinned / worst, 100.0 * full / worst)
}

fn run_one(app: &AppProfile, n_vms: usize, policy: SchedPolicy, seed: u64) -> (f64, Option<f64>) {
    let tick_ms = 0.1;
    let cfg = SchedulerConfig {
        n_cores: 8,
        tick_ms,
        policy,
        seed,
        ..Default::default()
    };
    let vms = sched_vms(app, n_vms, 4, tick_ms);
    let out = run_scheduler(&cfg, &vms);
    (out.makespan_ms(), out.avg_relocation_period_ms)
}

/// Runs Fig. 3 / Table I for every PARSEC application.
pub fn fig3_table1(seed: u64) -> Vec<SchedRow> {
    parsec_apps()
        .into_iter()
        .map(|app| {
            let (under_pinned_ms, _) = run_one(app, 2, SchedPolicy::Pinned, seed);
            let (under_full_ms, reloc_under_ms) = run_one(app, 2, SchedPolicy::FullMigration, seed);
            let (over_pinned_ms, _) = run_one(app, 4, SchedPolicy::Pinned, seed);
            let (over_full_ms, reloc_over_ms) = run_one(app, 4, SchedPolicy::FullMigration, seed);
            SchedRow {
                name: app.name,
                under_pinned_ms,
                under_full_ms,
                over_pinned_ms,
                over_full_ms,
                reloc_under_ms,
                reloc_over_ms,
                paper_under_ms: app.targets.table1_under_ms,
                paper_over_ms: app.targets.table1_over_ms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overcommitted_prefers_migration_on_average() {
        let rows = fig3_table1(7);
        assert_eq!(rows.len(), 13);
        let better = rows
            .iter()
            .filter(|r| r.over_full_ms <= r.over_pinned_ms)
            .count();
        assert!(
            better >= 9,
            "full migration should win overcommitted for most apps ({better}/13)"
        );
    }

    #[test]
    fn undercommitted_prefers_pinning_on_average() {
        let rows = fig3_table1(7);
        let better = rows
            .iter()
            .filter(|r| r.under_pinned_ms <= r.under_full_ms * 1.02)
            .count();
        assert!(
            better >= 9,
            "pinning should be competitive undercommitted for most apps ({better}/13)"
        );
    }

    #[test]
    fn relocation_periods_shorter_when_overcommitted() {
        let rows = fig3_table1(7);
        let mut shorter = 0;
        let mut both = 0;
        for r in &rows {
            if let (Some(u), Some(o)) = (r.reloc_under_ms, r.reloc_over_ms) {
                both += 1;
                if o < u {
                    shorter += 1;
                }
            }
        }
        assert!(both >= 8, "most apps should migrate in both settings");
        assert!(
            shorter * 4 >= both * 3,
            "overcommitted periods should mostly be shorter ({shorter}/{both})"
        );
    }

    #[test]
    fn normalization_caps_at_100() {
        let rows = fig3_table1(3);
        for r in &rows {
            let (p, f) = r.under_normalized();
            assert!(p <= 100.0 + 1e-9 && f <= 100.0 + 1e-9);
            assert!((p - 100.0).abs() < 1e-9 || (f - 100.0).abs() < 1e-9);
        }
    }
}

//! Experiment drivers, one per paper table/figure.
//!
//! | Paper artifact | Driver |
//! |---|---|
//! | Fig. 1 (L2 miss decomposition) | [`fig1`] |
//! | Fig. 2 (potential reduction) | [`crate::fig2_sweep`] |
//! | Fig. 3 / Table I (scheduler) | [`fig3_table1`] |
//! | Table IV / Fig. 6 (pinned VMs) | [`table4_fig6`] |
//! | Figs. 7-8 (migration sweep) | [`migration_sweep`] |
//! | Fig. 9 (removal-period CDF) | [`removal_periods`] |
//! | Table V (content ratios) | [`table5`] |
//! | Fig. 10 (content policies) | [`fig10`] |
//! | Table VI (data holders) | [`table6`] |
//!
//! Every driver takes a [`RunScale`] so tests can run fast while the
//! benchmark binaries use the full scale.
//!
//! The drivers share warm-up work through the process-wide warm-state
//! pool and cell memo in [`warm`] (toggled by [`set_warm_reuse`] /
//! `VSNOOP_WARM_REUSE`), and the heavy sweeps fan their independent
//! cells over [`crate::runner::scatter`]'s shard pool. Both are
//! output-invariant: report text stays byte-identical to a cold serial
//! run at any worker count.

mod common;
mod content;
mod fig1;
mod fig2_validation;
mod migration;
mod pinned;
mod sched;
mod warm;

pub use common::{run_pinned, RunScale};
pub use content::{fig10, table5, table6, Fig10Row, Table5Row, Table6Row};
pub use fig1::{fig1, Fig1Row};
pub use fig2_validation::{fig2_validation, Fig2Validation};
pub use migration::{
    cdf, migration_policies, migration_sweep, removal_periods, MigrationPoint, RemovalSample,
};
pub use pinned::{table4_fig6, PinnedRow};
pub use sched::{fig3_table1, SchedRow};
pub use warm::{
    clear_warm_pool, reset_warm_counters, set_warm_reuse, warm_counters, warm_pool_len,
    warm_reuse_enabled, warm_tenant_counters, DEFAULT_WARM_CAP,
};

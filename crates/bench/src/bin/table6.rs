//! Table VI — potential data holders for content-shared misses.

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::table6(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("table6: {e}");
            std::process::exit(1);
        }
    }
}

//! The TokenB coherence protocol engine (Martin et al., ISCA 2003).
//!
//! The paper builds virtual snooping on Token Coherence (Table II) because
//! its *safe retry* property is exactly what the counter-threshold
//! mechanism needs: "if the first attempt of a coherence transaction fails
//! for not being able to collect enough tokens, more transient requests can
//! be retried [...] If the number of retries exceeds a threshold, Token
//! Coherence resorts to heavy-weighted persistent requests which guarantee
//! forward progress" (Section IV-B).
//!
//! This module owns the token-conservation bookkeeping. Every block has
//! [`TokenProtocol::total_tokens`] tokens, distributed between caches and
//! memory; reads need one, writes need all. A transient request snoops only
//! a destination set chosen by the caller (the virtual-snooping filter) and
//! *fails* if the set did not contain enough tokens — failed attempts
//! bounce any tokens they collected back to memory, so the global token
//! count is invariant whether or not filtering was accurate.

use crate::addr::BlockAddr;
use crate::cache::{Cache, CacheShard};
use crate::line::{CacheLine, LineTag, TokenState};
use crate::table::BlockMap;

/// Indexed per-core cache operations the protocol engine performs,
/// implemented by the full per-core cache array (`[Cache]`, the serial
/// path) and by a shard's per-core views (`[CacheShard]`, the parallel
/// engine), so one transaction body serves both execution paths
/// bit-identically.
pub trait CacheBank {
    /// `caches[core].probe(block)`.
    fn probe(&self, core: usize, block: BlockAddr) -> Option<&CacheLine>;
    /// `caches[core].probe_mut(block)`.
    fn probe_mut(&mut self, core: usize, block: BlockAddr) -> Option<&mut CacheLine>;
    /// `caches[core].remove(block)`.
    fn remove(&mut self, core: usize, block: BlockAddr) -> Option<CacheLine>;
    /// `caches[core].insert(line)`.
    fn insert(&mut self, core: usize, line: CacheLine) -> Option<CacheLine>;
}

impl CacheBank for [Cache] {
    fn probe(&self, core: usize, block: BlockAddr) -> Option<&CacheLine> {
        self[core].probe(block)
    }
    fn probe_mut(&mut self, core: usize, block: BlockAddr) -> Option<&mut CacheLine> {
        self[core].probe_mut(block)
    }
    fn remove(&mut self, core: usize, block: BlockAddr) -> Option<CacheLine> {
        self[core].remove(block)
    }
    fn insert(&mut self, core: usize, line: CacheLine) -> Option<CacheLine> {
        self[core].insert(line)
    }
}

impl CacheBank for [CacheShard<'_>] {
    fn probe(&self, core: usize, block: BlockAddr) -> Option<&CacheLine> {
        self[core].probe(block)
    }
    fn probe_mut(&mut self, core: usize, block: BlockAddr) -> Option<&mut CacheLine> {
        self[core].probe_mut(block)
    }
    fn remove(&mut self, core: usize, block: BlockAddr) -> Option<CacheLine> {
        self[core].remove(block)
    }
    fn insert(&mut self, core: usize, line: CacheLine) -> Option<CacheLine> {
        self[core].insert(line)
    }
}

/// Tokens held by the memory controller, per block.
///
/// A block never referenced holds all its tokens — including the *owner*
/// token — at memory. Memory may only respond to a GETS with data while it
/// holds the owner token; that single rule is what makes transient requests
/// safe under arbitrary (even wrong) snoop filtering: if the owner is in
/// some cache the filter missed, the attempt simply fails and is retried
/// more broadly.
#[derive(Clone, Debug)]
pub struct TokenMemory {
    total: u32,
    entries: BlockMap<MemEntry>,
}

#[derive(Clone, Copy, Debug, Default)]
struct MemEntry {
    tokens: u32,
    owner: bool,
}

impl TokenMemory {
    /// Creates a token home directory with `total` tokens per block.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero.
    pub fn new(total: u32) -> Self {
        assert!(total > 0, "token count must be positive");
        TokenMemory {
            total,
            entries: BlockMap::new(),
        }
    }

    fn entry(&self, block: BlockAddr) -> MemEntry {
        self.entries
            .get(block.index())
            .copied()
            .unwrap_or(MemEntry {
                tokens: self.total,
                owner: true,
            })
    }

    /// The reset-state entry: all tokens plus the owner token at home.
    fn reset(&self) -> MemEntry {
        MemEntry {
            tokens: self.total,
            owner: true,
        }
    }

    /// Tokens per block in the whole system.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Tokens currently held at memory for `block`.
    pub fn tokens(&self, block: BlockAddr) -> u32 {
        self.entry(block).tokens
    }

    /// Whether memory holds the owner token for `block` (and therefore has
    /// clean, authoritative data).
    pub fn has_owner(&self, block: BlockAddr) -> bool {
        self.entry(block).owner
    }

    /// Iterates over every block whose memory-side holdings differ from
    /// the reset state (all tokens plus owner at memory), yielding
    /// `(block, tokens, owner)`. Blocks whose tokens have all returned
    /// home are skipped even if they were touched, so two ledgers that
    /// agree on every block compare equal regardless of access history.
    /// Iteration order is unspecified; sort before comparing.
    pub fn entries(&self) -> impl Iterator<Item = (BlockAddr, u32, bool)> + '_ {
        self.entries
            .iter()
            .filter(|(_, e)| !(e.tokens == self.total && e.owner))
            .map(|(b, e)| (BlockAddr::new(b), e.tokens, e.owner))
    }

    /// Takes up to `n` tokens from memory; returns `(taken, owner_taken)`.
    /// The owner token is handed out last: it transfers only when the take
    /// empties memory's holdings.
    pub fn take(&mut self, block: BlockAddr, n: u32) -> (u32, bool) {
        let reset = self.reset();
        let e = self.entries.entry_mut(block.index(), reset);
        let taken = e.tokens.min(n);
        let owner_taken = e.owner && taken == e.tokens && taken > 0;
        e.tokens -= taken;
        e.owner = e.owner && !owner_taken;
        (taken, owner_taken)
    }

    /// Returns `n` tokens (and possibly the owner token) to memory.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on token overflow or duplicate owner.
    pub fn put(&mut self, block: BlockAddr, n: u32, owner: bool) {
        let reset = self.reset();
        let total = self.total;
        let e = self.entries.entry_mut(block.index(), reset);
        debug_assert!(e.tokens + n <= total, "token overflow at memory");
        debug_assert!(!(e.owner && owner), "duplicate owner token at memory");
        e.tokens += n;
        e.owner |= owner;
    }

    /// Drains this ledger into `n_banks` bank ledgers, bank `k` owning
    /// every block with `block % n_banks == k` — the same low-bit routing
    /// the engine shards caches by, so a shard's transactions touch
    /// exactly one bank. Untouched blocks stay implicit: each bank shares
    /// this ledger's `total`, so it reconstructs the same reset-state
    /// entry on demand.
    ///
    /// # Panics
    ///
    /// Panics unless `n_banks` is a power of two.
    pub fn split(&mut self, n_banks: usize) -> Vec<TokenMemory> {
        assert!(
            n_banks.is_power_of_two(),
            "bank count must be a power of two"
        );
        let mask = n_banks as u64 - 1;
        let mut banks: Vec<TokenMemory> =
            (0..n_banks).map(|_| TokenMemory::new(self.total)).collect();
        for (b, e) in self.entries.iter() {
            *banks[(b & mask) as usize].entries.entry_mut(b, *e) = *e;
        }
        self.entries.clear();
        banks
    }

    /// Folds bank ledgers produced by [`TokenMemory::split`] back in.
    /// Entry values move verbatim; only the hash-table slot layout can
    /// differ from a never-split ledger, which is invisible to every
    /// consumer (lookups are by block, and [`TokenMemory::entries`]
    /// iteration is documented as unordered).
    pub fn absorb(&mut self, banks: impl IntoIterator<Item = TokenMemory>) {
        for bank in banks {
            debug_assert_eq!(bank.total, self.total, "bank token total mismatch");
            for (b, e) in bank.entries.iter() {
                *self.entries.entry_mut(b, *e) = *e;
            }
        }
    }
}

/// Where the data of a transaction came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataSource {
    /// Cache-to-cache transfer from the core with this index.
    Cache(usize),
    /// Fetched from external memory.
    Memory,
}

/// How a GETS may be satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadMode {
    /// Standard TokenB: only the owner-token holder (a cache in the
    /// snooped set, or memory) may supply data. Memory answers with *all*
    /// of its tokens plus ownership, so a sole reader lands in E and later
    /// readers enjoy cache-to-cache transfers.
    Strict,
    /// For content-shared (read-only) pages, Section VI: every copy is
    /// guaranteed clean, so *any* token holder in the snooped set — or
    /// memory, owner token or not — may supply the data. Memory hands out
    /// a single token so that concurrent VMs can keep reading from it.
    CleanShared,
}

/// Outcome of a read (GETS) transaction attempt.
#[derive(Clone, Debug)]
pub struct ReadResult {
    /// Whether the attempt collected a token (and data).
    pub success: bool,
    /// Data source on success.
    pub source: Option<DataSource>,
    /// Cores whose line disappeared (gave up their last token).
    pub invalidated: Vec<usize>,
    /// Victim displaced from the requester's cache by the fill, already
    /// written back (tokens returned to memory).
    pub evicted: Option<CacheLine>,
    /// Whether the eviction required a dirty write-back.
    pub evicted_dirty: bool,
    /// Number of remote caches that performed a snoop tag lookup.
    pub snooped: usize,
}

/// Outcome of a write (GETX) transaction attempt.
#[derive(Clone, Debug)]
pub struct WriteResult {
    /// Whether all tokens were collected.
    pub success: bool,
    /// Data source (None when the requester already had a valid copy, or
    /// on failure).
    pub source: Option<DataSource>,
    /// Cores that surrendered tokens *without* supplying data (token-only
    /// reply messages).
    pub token_repliers: Vec<usize>,
    /// Cores whose line was invalidated.
    pub invalidated: Vec<usize>,
    /// Victim displaced from the requester's cache by the fill.
    pub evicted: Option<CacheLine>,
    /// Whether the eviction required a dirty write-back.
    pub evicted_dirty: bool,
    /// Number of remote caches that performed a snoop tag lookup.
    pub snooped: usize,
    /// Tokens collected by a *failed* attempt were bounced to memory.
    pub bounced: bool,
}

/// Outcome of a read (GETS) attempt on the allocation-free mask API.
///
/// The mirror of [`ReadResult`] with the core *sets* carried as `u64`
/// bitmasks (bit `i` = core `i`) instead of heap-allocated vectors. Valid
/// because the system caps cores at 64 (`SystemConfig::validate`).
#[derive(Clone, Copy, Debug)]
pub struct ReadOutcome {
    /// Whether the attempt collected a token (and data).
    pub success: bool,
    /// Data source on success.
    pub source: Option<DataSource>,
    /// Mask of cores whose line disappeared (gave up their last token).
    pub invalidated: u64,
    /// Victim displaced from the requester's cache by the fill.
    pub evicted: Option<CacheLine>,
    /// Whether the eviction required a dirty write-back.
    pub evicted_dirty: bool,
    /// Number of remote caches that performed a snoop tag lookup.
    pub snooped: u32,
}

impl ReadOutcome {
    /// Number of parties that moved tokens to the requester this
    /// attempt: reads collect one token, from the responding cache or
    /// memory (0 on a failed attempt).
    pub fn tokens_moved(&self) -> u32 {
        u32::from(self.source.is_some())
    }
}

/// Outcome of a write (GETX) attempt on the allocation-free mask API.
///
/// The mirror of [`WriteResult`] with core sets as `u64` bitmasks.
#[derive(Clone, Copy, Debug)]
pub struct WriteOutcome {
    /// Whether all tokens were collected.
    pub success: bool,
    /// Data source (None when the requester already had a valid copy, or
    /// on failure).
    pub source: Option<DataSource>,
    /// Mask of cores that surrendered tokens *without* supplying data.
    pub token_repliers: u64,
    /// Mask of cores whose line was invalidated.
    pub invalidated: u64,
    /// Victim displaced from the requester's cache by the fill.
    pub evicted: Option<CacheLine>,
    /// Whether the eviction required a dirty write-back.
    pub evicted_dirty: bool,
    /// Number of remote caches that performed a snoop tag lookup.
    pub snooped: u32,
    /// Tokens collected by a *failed* attempt were bounced to memory.
    pub bounced: bool,
}

impl WriteOutcome {
    /// Number of parties that moved tokens to the requester this
    /// attempt: every token-only replier, plus the data source (a cache
    /// or memory) when one responded.
    pub fn tokens_moved(&self) -> u32 {
        self.token_repliers.count_ones() + u32::from(self.source.is_some())
    }
}

/// Iterates the set bits of a core mask in ascending core order.
///
/// # Examples
///
/// ```
/// use sim_mem::mask_cores;
/// let cores: Vec<usize> = mask_cores(0b1010_0001).collect();
/// assert_eq!(cores, vec![0, 5, 7]);
/// ```
pub fn mask_cores(mut mask: u64) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let c = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(c)
        }
    })
}

fn mask_of(dests: &[usize]) -> u64 {
    let mut mask = 0u64;
    for &d in dests {
        assert!(d < 64, "core index {d} exceeds the 64-bit mask width");
        mask |= 1 << d;
    }
    mask
}

/// Read-only observers over a token ledger, implemented by both the
/// optimized [`TokenProtocol`] and the frozen
/// [`crate::ReferenceProtocol`], so invariant checkers and architectural
/// state dumps can run against either engine.
pub trait TokenLedger: std::fmt::Debug {
    /// Tokens per block in the whole system.
    fn total_tokens(&self) -> u32;
    /// Tokens currently at memory for `block`.
    fn memory_tokens(&self, block: BlockAddr) -> u32;
    /// Whether memory holds the owner token for `block`.
    fn memory_has_owner(&self, block: BlockAddr) -> bool;
    /// The non-reset memory-side ledger entries, sorted by block.
    fn memory_entries_sorted(&self) -> Vec<(BlockAddr, u32, bool)>;
}

/// The token-coherence engine: token conservation across a cache array and
/// memory.
///
/// # Examples
///
/// ```
/// use sim_mem::{TokenProtocol, Cache, CacheGeometry, BlockAddr, LineTag};
/// use sim_vm::VmId;
///
/// let mut caches = vec![Cache::new(CacheGeometry::new(4096, 2), 2); 4];
/// let mut tp = TokenProtocol::new(4);
/// let b = BlockAddr::new(10);
/// // Core 0 reads: data comes from memory.
/// let r = tp.read_miss(&mut caches, 0, &[1, 2, 3], b, true, LineTag::Vm(VmId::new(0)),
///                      sim_mem::ReadMode::Strict);
/// assert!(r.success);
/// // Core 1 writes: collects core 0's token and memory's remainder.
/// let w = tp.write_miss(&mut caches, 1, &[0, 2, 3], b, true, LineTag::Vm(VmId::new(0)));
/// assert!(w.success);
/// assert!(caches[0].probe(b).is_none()); // invalidated
/// ```
#[derive(Clone, Debug)]
pub struct TokenProtocol {
    memory: TokenMemory,
}

impl TokenProtocol {
    /// Creates a protocol engine with `total` tokens per block (one per
    /// cache in the paper's configuration).
    pub fn new(total: u32) -> Self {
        TokenProtocol {
            memory: TokenMemory::new(total),
        }
    }

    /// Tokens per block.
    pub fn total_tokens(&self) -> u32 {
        self.memory.total()
    }

    /// Tokens currently at memory for `block`.
    pub fn memory_tokens(&self, block: BlockAddr) -> u32 {
        self.memory.tokens(block)
    }

    /// Whether memory holds the owner token for `block`. Together with
    /// [`TokenProtocol::memory_tokens`] this exposes the complete
    /// memory-side token ledger, so an external invariant checker can
    /// verify conservation and owner uniqueness without reaching into the
    /// protocol's internals.
    pub fn memory_has_owner(&self, block: BlockAddr) -> bool {
        self.memory.has_owner(block)
    }

    /// The memory-side token ledger: every block not in the reset state,
    /// as `(block, tokens, owner)`. See [`TokenMemory::entries`].
    pub fn memory_entries(&self) -> impl Iterator<Item = (BlockAddr, u32, bool)> + '_ {
        self.memory.entries()
    }

    /// Executes a read-miss (GETS) attempt by `requester` over the snoop
    /// destination set `dests`.
    ///
    /// On success the requester's cache is filled (the token/ownership
    /// transfer and any eviction are handled internally); on failure
    /// nothing changes. See [`ReadMode`] for the provider rules. `dests`
    /// is treated as a *set*: when several caches could supply the data
    /// (CleanShared), the lowest-indexed one does.
    ///
    /// This is a compatibility wrapper over
    /// [`TokenProtocol::read_miss_masked`], the allocation-free mask API
    /// the simulator's hot path uses directly.
    ///
    /// # Panics
    ///
    /// Panics if `dests` contains the requester, or if the requester
    /// already holds a valid line for `block` (that would be a hit, not a
    /// miss).
    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    pub fn read_miss(
        &mut self,
        caches: &mut [Cache],
        requester: usize,
        dests: &[usize],
        block: BlockAddr,
        include_memory: bool,
        tag: LineTag,
        mode: ReadMode,
    ) -> ReadResult {
        assert!(
            !dests.contains(&requester),
            "requester must not snoop itself"
        );
        assert!(
            caches[requester].probe(block).is_none(),
            "read_miss on a block the requester already caches"
        );
        let out = self.read_miss_masked(
            caches,
            requester,
            mask_of(dests),
            block,
            include_memory,
            tag,
            mode,
        );
        ReadResult {
            success: out.success,
            source: out.source,
            invalidated: mask_cores(out.invalidated).collect(),
            evicted: out.evicted,
            evicted_dirty: out.evicted_dirty,
            snooped: dests.len(),
        }
    }

    /// Executes a read-miss (GETS) attempt with the destination set as a
    /// core bitmask (bit `i` = core `i`). Allocation-free: the outcome
    /// carries invalidations as a mask instead of a vector.
    ///
    /// Semantically identical to [`TokenProtocol::read_miss`] over the
    /// ascending destination list; the self-snoop and already-cached
    /// preconditions are only `debug_assert`ed here — this is the hot
    /// path, and the invariant checker plus the differential guard pin
    /// the behaviour in release builds.
    #[allow(clippy::too_many_arguments)] // mirrors the wire message's fields
    pub fn read_miss_masked<B: CacheBank + ?Sized>(
        &mut self,
        caches: &mut B,
        requester: usize,
        dests: u64,
        block: BlockAddr,
        include_memory: bool,
        tag: LineTag,
        mode: ReadMode,
    ) -> ReadOutcome {
        debug_assert_eq!(
            dests & (1 << requester),
            0,
            "requester must not snoop itself"
        );
        debug_assert!(
            caches.probe(requester, block).is_none(),
            "read_miss on a block the requester already caches"
        );
        let snooped = dests.count_ones();
        let mut invalidated = 0u64;

        // TokenB provider rule: the holder of the *owner* token responds
        // to a GETS with data — either a cache in the snooped set or
        // memory. Under `CleanShared` (read-only pages), any valid copy
        // may additionally respond, and memory may respond without the
        // owner token. One ascending pass finds both the (unique) owner
        // and the lowest-indexed fallback holder.
        let mut owner_at = None;
        let mut first_holder = None;
        let mut it = dests;
        while it != 0 {
            let c = it.trailing_zeros() as usize;
            it &= it - 1;
            if let Some(l) = caches.probe(c, block) {
                if l.state.owner {
                    owner_at = Some(c);
                    break;
                }
                if first_holder.is_none() && l.state.tokens > 0 {
                    first_holder = Some(c);
                }
            }
        }
        let holder_at = owner_at.or(if mode == ReadMode::CleanShared {
            first_holder
        } else {
            None
        });

        let (fill, source) = if let Some(c) = holder_at {
            let line = caches.probe_mut(c, block).expect("holder has line");
            if line.state.tokens > 1 {
                line.state.tokens -= 1;
                // A multi-token holder hands over a plain token and keeps
                // ownership (and dirtiness) if it had them.
                (TokenState::shared_one(), DataSource::Cache(c))
            } else {
                // Last token: the whole line (ownership and dirty data, if
                // held) transfers to the requester.
                let line = caches.remove(c, block).expect("line present");
                invalidated |= 1 << c;
                (line.state, DataSource::Cache(c))
            }
        } else if include_memory && mode == ReadMode::Strict && self.memory.has_owner(block) {
            // TokenB memory answers a GETS with *all* its tokens plus the
            // owner token: a sole reader lands in E.
            let (taken, owner_taken) = self.memory.take(block, self.memory.total());
            debug_assert!(taken >= 1 && owner_taken);
            (
                TokenState {
                    tokens: taken,
                    owner: true,
                    dirty: false,
                },
                DataSource::Memory,
            )
        } else if include_memory && mode == ReadMode::CleanShared && self.memory.tokens(block) > 0 {
            let (taken, owner_taken) = self.memory.take(block, 1);
            debug_assert_eq!(taken, 1);
            (
                TokenState {
                    tokens: 1,
                    owner: owner_taken,
                    dirty: false,
                },
                DataSource::Memory,
            )
        } else {
            return ReadOutcome {
                success: false,
                source: None,
                invalidated,
                evicted: None,
                evicted_dirty: false,
                snooped,
            };
        };

        let (evicted, evicted_dirty) =
            self.fill(caches, requester, CacheLine::new(block, fill, tag));
        ReadOutcome {
            success: true,
            source: Some(source),
            invalidated,
            evicted,
            evicted_dirty,
            snooped,
        }
    }

    /// Executes a write-miss / upgrade (GETX) attempt by `requester` over
    /// the snoop destination set `dests`.
    ///
    /// Collects every token held by the destination caches (invalidating
    /// their lines) and, when `include_memory`, the tokens at memory. The
    /// attempt succeeds if the requester ends up with all tokens; a failed
    /// attempt bounces the tokens it collected back to memory and leaves
    /// the requester's pre-existing holdings untouched.
    ///
    /// `dests` is treated as a *set*; outcome vectors list cores in
    /// ascending index order.
    ///
    /// This is a compatibility wrapper over
    /// [`TokenProtocol::write_miss_masked`], the allocation-free mask API
    /// the simulator's hot path uses directly.
    ///
    /// # Panics
    ///
    /// Panics if `dests` contains the requester.
    pub fn write_miss(
        &mut self,
        caches: &mut [Cache],
        requester: usize,
        dests: &[usize],
        block: BlockAddr,
        include_memory: bool,
        tag: LineTag,
    ) -> WriteResult {
        assert!(
            !dests.contains(&requester),
            "requester must not snoop itself"
        );
        let out = self.write_miss_masked(
            caches,
            requester,
            mask_of(dests),
            block,
            include_memory,
            tag,
        );
        WriteResult {
            success: out.success,
            source: out.source,
            token_repliers: mask_cores(out.token_repliers).collect(),
            invalidated: mask_cores(out.invalidated).collect(),
            evicted: out.evicted,
            evicted_dirty: out.evicted_dirty,
            snooped: dests.len(),
            bounced: out.bounced,
        }
    }

    /// Executes a write-miss / upgrade (GETX) attempt with the
    /// destination set as a core bitmask. Allocation-free: the outcome
    /// carries the invalidated and token-replier sets as masks.
    ///
    /// Semantically identical to [`TokenProtocol::write_miss`] over the
    /// ascending destination list; the self-snoop precondition is only
    /// `debug_assert`ed here (hot path — see
    /// [`TokenProtocol::read_miss_masked`]).
    pub fn write_miss_masked<B: CacheBank + ?Sized>(
        &mut self,
        caches: &mut B,
        requester: usize,
        dests: u64,
        block: BlockAddr,
        include_memory: bool,
        tag: LineTag,
    ) -> WriteOutcome {
        debug_assert_eq!(
            dests & (1 << requester),
            0,
            "requester must not snoop itself"
        );
        let total = self.total_tokens();
        let snooped = dests.count_ones();
        let existing = caches.probe(requester, block).map(|l| l.state);
        let have = existing.map_or(0, |s| s.tokens);
        let had_data = existing.is_some();

        let mut gained = 0u32;
        let mut collected_owner = false;
        let mut source: Option<DataSource> = None;
        let mut token_repliers = 0u64;
        let mut invalidated = 0u64;

        let mut it = dests;
        while it != 0 {
            let c = it.trailing_zeros() as usize;
            it &= it - 1;
            let Some(line) = caches.remove(c, block) else {
                continue;
            };
            gained += line.state.tokens;
            invalidated |= 1 << c;
            if line.state.owner {
                collected_owner = true;
                // The owner supplies the data block.
                if !had_data {
                    source = Some(DataSource::Cache(c));
                } else {
                    token_repliers |= 1 << c;
                }
            } else {
                token_repliers |= 1 << c;
            }
        }
        if include_memory {
            let mem_had_owner = self.memory.has_owner(block);
            let (from_mem, owner_taken) = self.memory.take(block, total);
            collected_owner |= owner_taken;
            if from_mem > 0 && mem_had_owner && source.is_none() && !had_data {
                source = Some(DataSource::Memory);
            }
            gained += from_mem;
        }

        if have + gained == total {
            // Success: requester holds everything; install the modified
            // line. Remove any pre-existing line first so tag/residence
            // accounting is uniform.
            debug_assert!(
                collected_owner || existing.is_some_and(|s| s.owner),
                "all tokens collected must include the owner token"
            );
            caches.remove(requester, block);
            let (evicted, evicted_dirty) = self.fill(
                caches,
                requester,
                CacheLine::new(block, TokenState::modified(total), tag),
            );
            WriteOutcome {
                success: true,
                source,
                token_repliers,
                invalidated,
                evicted,
                evicted_dirty,
                snooped,
                bounced: false,
            }
        } else {
            // Failure: bounce what we collected to memory. If the data we
            // pulled out of the owner was dirty this acts as a write-back,
            // keeping memory's copy clean.
            self.memory.put(block, gained, collected_owner);
            WriteOutcome {
                success: false,
                source: None,
                token_repliers,
                invalidated,
                evicted: None,
                evicted_dirty: false,
                snooped,
                bounced: gained > 0,
            }
        }
    }

    /// Splits the engine into `n_banks` bank engines for the parallel
    /// path: bank `k` owns the ledger entries of every block with
    /// `block % n_banks == k` (see [`TokenMemory::split`]). This engine
    /// is left empty; fold the banks back with
    /// [`TokenProtocol::absorb_banks`] before reading any ledger state
    /// through it.
    pub fn split_banks(&mut self, n_banks: usize) -> Vec<TokenProtocol> {
        self.memory
            .split(n_banks)
            .into_iter()
            .map(|memory| TokenProtocol { memory })
            .collect()
    }

    /// Folds bank engines produced by [`TokenProtocol::split_banks`]
    /// back into this one.
    pub fn absorb_banks(&mut self, banks: impl IntoIterator<Item = TokenProtocol>) {
        self.memory.absorb(banks.into_iter().map(|p| p.memory));
    }

    /// Evicts `line` from wherever it was cached: its tokens (and owner
    /// token, if held) return to memory. Returns `true` if a dirty
    /// write-back was required.
    pub fn writeback(&mut self, line: &CacheLine) -> bool {
        self.memory
            .put(line.block, line.state.tokens, line.state.owner);
        line.state.owner && line.state.dirty
    }

    /// Verifies token conservation for `block`: the tokens in all caches
    /// plus memory equal the total, and exactly one party (a cache or
    /// memory) holds the owner token.
    pub fn check_invariant(&self, caches: &[Cache], block: BlockAddr) -> bool {
        let cached: u32 = caches
            .iter()
            .filter_map(|c| c.probe(block))
            .map(|l| l.state.tokens)
            .sum();
        let cache_owners = caches
            .iter()
            .filter_map(|c| c.probe(block))
            .filter(|l| l.state.owner)
            .count();
        let owners = cache_owners + usize::from(self.memory.has_owner(block));
        cached + self.memory.tokens(block) == self.total_tokens() && owners == 1
    }

    /// Fills the requester's cache, returning any displaced victim after
    /// writing it back. The victim maps to the same set as the fill, so
    /// under the shard engine its write-back lands in the same token
    /// bank.
    fn fill<B: CacheBank + ?Sized>(
        &mut self,
        caches: &mut B,
        requester: usize,
        line: CacheLine,
    ) -> (Option<CacheLine>, bool) {
        match caches.insert(requester, line) {
            Some(victim) => {
                let dirty = self.writeback(&victim);
                (Some(victim), dirty)
            }
            None => (None, false),
        }
    }
}

impl TokenLedger for TokenProtocol {
    fn total_tokens(&self) -> u32 {
        TokenProtocol::total_tokens(self)
    }

    fn memory_tokens(&self, block: BlockAddr) -> u32 {
        TokenProtocol::memory_tokens(self, block)
    }

    fn memory_has_owner(&self, block: BlockAddr) -> bool {
        TokenProtocol::memory_has_owner(self, block)
    }

    fn memory_entries_sorted(&self) -> Vec<(BlockAddr, u32, bool)> {
        let mut v: Vec<_> = self.memory_entries().collect();
        v.sort_unstable_by_key(|&(b, _, _)| b);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheGeometry;
    use sim_vm::VmId;

    const N: usize = 4;

    fn setup() -> (Vec<Cache>, TokenProtocol) {
        let caches = vec![Cache::new(CacheGeometry::new(8 * 1024, 4), 4); N];
        (caches, TokenProtocol::new(N as u32))
    }

    fn tag(vm: u16) -> LineTag {
        LineTag::Vm(VmId::new(vm))
    }

    fn others(me: usize) -> Vec<usize> {
        (0..N).filter(|&c| c != me).collect()
    }

    fn read(
        tp: &mut TokenProtocol,
        caches: &mut [Cache],
        core: usize,
        dests: &[usize],
        b: BlockAddr,
        mem: bool,
        t: LineTag,
    ) -> ReadResult {
        tp.read_miss(caches, core, dests, b, mem, t, ReadMode::Strict)
    }

    #[test]
    fn cold_read_gets_exclusive_from_memory() {
        let (mut caches, mut tp) = setup();
        let b = BlockAddr::new(100);
        let r = read(&mut tp, &mut caches, 0, &others(0), b, true, tag(0));
        assert!(r.success);
        assert_eq!(r.source, Some(DataSource::Memory));
        assert_eq!(r.snooped, 3);
        // TokenB memory answers a GETS with everything it has: E state.
        assert_eq!(tp.memory_tokens(b), 0);
        let line = caches[0].probe(b).unwrap();
        assert_eq!(line.state.moesi(4), crate::line::Moesi::E);
        assert!(tp.check_invariant(&caches, b));
    }

    #[test]
    fn second_reader_gets_cache_to_cache_from_exclusive_owner() {
        let (mut caches, mut tp) = setup();
        let b = BlockAddr::new(5);
        read(&mut tp, &mut caches, 0, &others(0), b, true, tag(0));
        let r = read(&mut tp, &mut caches, 1, &[0], b, true, tag(0));
        assert!(r.success);
        assert_eq!(r.source, Some(DataSource::Cache(0)));
        assert!(r.invalidated.is_empty());
        // The owner handed over one plain token and kept the rest.
        assert_eq!(caches[0].probe(b).unwrap().state.tokens, 3);
        assert!(caches[0].probe(b).unwrap().state.owner);
        assert_eq!(caches[1].probe(b).unwrap().state.tokens, 1);
        assert!(tp.check_invariant(&caches, b));
    }

    #[test]
    fn read_fails_when_owner_outside_dest_set() {
        let (mut caches, mut tp) = setup();
        let b = BlockAddr::new(5);
        // Writer takes everything; core 0 is now the dirty owner.
        tp.write_miss(&mut caches, 0, &others(0), b, true, tag(0));
        read(&mut tp, &mut caches, 1, &[0], b, true, tag(0)); // owner serves
        assert_eq!(tp.memory_tokens(b), 0);
        // Core 2 snoops only core 1 (a plain shared holder): neither it nor
        // memory holds the owner token, so the strict attempt fails...
        let r = read(&mut tp, &mut caches, 2, &[1], b, true, tag(0));
        assert!(!r.success);
        assert_eq!(caches[1].probe(b).unwrap().state.tokens, 1);
        assert!(tp.check_invariant(&caches, b));
        // ...and a broadcast retry reaches the owner.
        let r2 = read(&mut tp, &mut caches, 2, &others(2), b, true, tag(0));
        assert!(r2.success);
        assert_eq!(r2.source, Some(DataSource::Cache(0)));
        assert!(tp.check_invariant(&caches, b));
    }

    #[test]
    fn clean_shared_reads_spread_tokens_from_memory() {
        // The content-shared mode: memory hands out single tokens so every
        // VM can read the deduplicated page directly from memory.
        let (mut caches, mut tp) = setup();
        let b = BlockAddr::new(50);
        for core in 0..4 {
            let r = tp.read_miss(
                &mut caches,
                core,
                &[],
                b,
                true,
                tag(0),
                ReadMode::CleanShared,
            );
            assert!(r.success, "clean read {core} failed");
            assert_eq!(r.source, Some(DataSource::Memory));
            assert!(tp.check_invariant(&caches, b));
        }
        assert_eq!(tp.memory_tokens(b), 0);
        // The owner token left with the last token.
        let owner_cache = caches
            .iter()
            .position(|c| c.probe(b).is_some_and(|l| l.state.owner))
            .expect("some cache owns the block");
        assert_eq!(owner_cache, 3, "owner token is handed out last");
        // Evicting the owner line returns the owner token to memory.
        let line = *caches[3].probe(b).unwrap();
        caches[3].remove(b);
        let dirty = tp.writeback(&line);
        assert!(!dirty, "clean owner write-back carries no data");
        assert!(tp.check_invariant(&caches, b));
    }

    #[test]
    fn clean_shared_read_served_by_plain_holder() {
        let (mut caches, mut tp) = setup();
        let b = BlockAddr::new(51);
        // Core 0 reads clean-shared (1 token from memory).
        tp.read_miss(&mut caches, 0, &[], b, true, tag(0), ReadMode::CleanShared);
        // Core 1 snoops only core 0, memory excluded: the plain holder
        // serves under CleanShared (read-only data is safe anywhere)...
        let r = tp.read_miss(
            &mut caches,
            1,
            &[0],
            b,
            false,
            tag(1),
            ReadMode::CleanShared,
        );
        assert!(r.success);
        assert_eq!(r.source, Some(DataSource::Cache(0)));
        // ...its single token transferred, so core 0's line vanished.
        assert_eq!(r.invalidated, vec![0]);
        assert!(tp.check_invariant(&caches, b));
        // A strict read in the same situation would have failed.
        let r2 = tp.read_miss(&mut caches, 2, &[1], b, false, tag(2), ReadMode::Strict);
        assert!(!r2.success);
    }

    #[test]
    fn write_collects_all_tokens_and_invalidates() {
        let (mut caches, mut tp) = setup();
        let b = BlockAddr::new(9);
        // Three readers: the first lands in E, the others are served
        // cache-to-cache by the owner.
        for core in 0..3 {
            read(&mut tp, &mut caches, core, &others(core), b, true, tag(0));
        }
        assert_eq!(tp.memory_tokens(b), 0);
        assert_eq!(caches[0].probe(b).unwrap().state.tokens, 2);
        let w = tp.write_miss(&mut caches, 3, &others(3), b, true, tag(0));
        assert!(w.success);
        assert_eq!(w.invalidated.len(), 3);
        // The owner (core 0) supplied the data; the plain holders sent
        // token-only replies.
        assert_eq!(w.source, Some(DataSource::Cache(0)));
        assert_eq!(w.token_repliers.len(), 2);
        let line = caches[3].probe(b).unwrap();
        assert_eq!(line.state.moesi(4), crate::line::Moesi::M);
        assert!(tp.check_invariant(&caches, b));
    }

    #[test]
    fn read_after_write_gets_data_from_dirty_owner() {
        let (mut caches, mut tp) = setup();
        let b = BlockAddr::new(2);
        tp.write_miss(&mut caches, 2, &others(2), b, true, tag(1));
        let r = read(&mut tp, &mut caches, 0, &others(0), b, true, tag(1));
        assert!(r.success);
        assert_eq!(r.source, Some(DataSource::Cache(2)));
        // Owner keeps ownership and dirtiness; requester got one token.
        let owner = caches[2].probe(b).unwrap();
        assert!(owner.state.owner && owner.state.dirty);
        assert_eq!(owner.state.tokens, 3);
        assert_eq!(caches[0].probe(b).unwrap().state.tokens, 1);
        assert!(tp.check_invariant(&caches, b));
    }

    #[test]
    fn upgrade_from_shared_to_modified() {
        let (mut caches, mut tp) = setup();
        let b = BlockAddr::new(77);
        read(&mut tp, &mut caches, 0, &others(0), b, true, tag(0));
        read(&mut tp, &mut caches, 1, &others(1), b, true, tag(0));
        // Core 0 (the owner, 3 tokens) upgrades: collects core 1's token.
        let w = tp.write_miss(&mut caches, 0, &others(0), b, true, tag(0));
        assert!(w.success);
        // Core 0 already had the data, so nobody *supplies* data.
        assert_eq!(w.source, None);
        assert_eq!(w.token_repliers, vec![1]);
        assert!(caches[0].probe(b).unwrap().state.can_write(4));
        assert!(caches[1].probe(b).is_none());
        assert!(tp.check_invariant(&caches, b));
    }

    #[test]
    fn filtered_write_fails_and_bounces_tokens() {
        let (mut caches, mut tp) = setup();
        let b = BlockAddr::new(4);
        // Core 3 reads (E: all four tokens); core 1 reads from it.
        read(&mut tp, &mut caches, 3, &others(3), b, true, tag(0));
        read(&mut tp, &mut caches, 1, &[3], b, true, tag(0));
        // Core 0's write snoops only core 1: it collects one token but not
        // the owner's three, so it fails and bounces the token to memory.
        let w = tp.write_miss(&mut caches, 0, &[1], b, true, tag(0));
        assert!(!w.success);
        assert!(w.bounced);
        assert!(caches[0].probe(b).is_none(), "failed write must not fill");
        assert!(
            caches[1].probe(b).is_none(),
            "snooped holder gave its token"
        );
        assert_eq!(caches[3].probe(b).unwrap().state.tokens, 3);
        assert_eq!(tp.memory_tokens(b), 1);
        assert!(tp.check_invariant(&caches, b));
        // A broadcast retry now succeeds.
        let w2 = tp.write_miss(&mut caches, 0, &others(0), b, true, tag(0));
        assert!(w2.success);
        assert!(tp.check_invariant(&caches, b));
    }

    #[test]
    fn filtered_read_fails_without_memory_or_holder() {
        let (mut caches, mut tp) = setup();
        let b = BlockAddr::new(8);
        let r = read(&mut tp, &mut caches, 0, &[1], b, false, tag(0));
        assert!(!r.success);
        assert!(caches[0].probe(b).is_none());
        assert_eq!(tp.memory_tokens(b), 4);
    }

    #[test]
    fn eviction_returns_tokens_to_memory() {
        let (caches, mut tp) = setup();
        // A tiny 1-set cache forces eviction quickly.
        let mut small = vec![Cache::new(CacheGeometry::new(2 * 64, 2), 4); 2];
        let b1 = BlockAddr::new(0);
        let b2 = BlockAddr::new(2);
        let b3 = BlockAddr::new(4);
        tp.write_miss(&mut small, 0, &[1], b1, true, tag(0));
        read(&mut tp, &mut small, 0, &[1], b2, true, tag(0));
        // Third fill evicts the LRU (b1, dirty M line) -> write-back.
        let r = read(&mut tp, &mut small, 0, &[1], b3, true, tag(0));
        let victim = r.evicted.expect("eviction expected");
        assert_eq!(victim.block, b1);
        assert!(r.evicted_dirty, "M line eviction is a dirty write-back");
        assert_eq!(tp.memory_tokens(b1), 4);
        // Unrelated cache array untouched.
        assert_eq!(caches.len(), 4);
    }

    #[test]
    fn residence_counters_follow_protocol_actions() {
        let (mut caches, mut tp) = setup();
        let b = BlockAddr::new(3);
        let vm = VmId::new(2);
        read(
            &mut tp,
            &mut caches,
            1,
            &others(1),
            b,
            true,
            LineTag::Vm(vm),
        );
        assert_eq!(caches[1].residence(vm), 1);
        tp.write_miss(&mut caches, 0, &others(0), b, true, LineTag::Vm(vm));
        assert_eq!(caches[1].residence(vm), 0);
        assert_eq!(caches[0].residence(vm), 1);
    }

    #[test]
    #[should_panic(expected = "must not snoop itself")]
    fn self_snoop_rejected() {
        let (mut caches, mut tp) = setup();
        let _ = read(
            &mut tp,
            &mut caches,
            0,
            &[0, 1],
            BlockAddr::new(1),
            true,
            tag(0),
        );
    }

    #[test]
    fn split_banks_route_by_block_and_absorb_restores_ledger() {
        let (mut caches, mut tp) = setup();
        // Touch a spread of blocks so the ledger has non-reset entries.
        for b in [0u64, 1, 2, 3, 8, 9, 130, 131] {
            let block = BlockAddr::new(b);
            if b % 2 == 0 {
                read(&mut tp, &mut caches, 0, &others(0), block, true, tag(0));
            } else {
                tp.write_miss(&mut caches, 1, &others(1), block, true, tag(1));
            }
        }
        let expected = tp.memory_entries_sorted();

        let mut banks = tp.split_banks(4);
        assert!(
            tp.memory_entries().next().is_none(),
            "split drains the parent ledger"
        );
        for (k, bank) in banks.iter().enumerate() {
            assert_eq!(bank.total_tokens(), 4);
            for (b, _, _) in bank.memory_entries() {
                assert_eq!(b.index() % 4, k as u64, "bank {k} got foreign block {b:?}");
            }
            // Untouched blocks still read as reset state through a bank.
            assert_eq!(bank.memory_tokens(BlockAddr::new(997)), 4);
        }
        // A bank serves protocol ops for its own blocks: evict core 0's
        // copy of block 8 (bank 0) through the bank.
        let line = *caches[0].probe(BlockAddr::new(8)).expect("cached");
        caches[0].remove(BlockAddr::new(8));
        banks[0].writeback(&line);

        let mut restored = TokenProtocol::new(4);
        // Rebuild: absorb into a fresh ledger, then undo the eviction so
        // the ledger matches `expected` again.
        restored.absorb_banks(banks);
        let (taken, owner) = restored.memory.take(BlockAddr::new(8), line.state.tokens);
        assert_eq!((taken, owner), (line.state.tokens, line.state.owner));
        assert_eq!(restored.memory_entries_sorted(), expected);
    }

    #[test]
    fn memory_take_put_roundtrip() {
        let mut m = TokenMemory::new(8);
        let b = BlockAddr::new(1);
        assert_eq!(m.tokens(b), 8);
        assert!(m.has_owner(b));
        assert_eq!(m.take(b, 3), (3, false));
        assert_eq!(m.tokens(b), 5);
        assert!(m.has_owner(b));
        // Draining memory hands out the owner token with the last batch.
        assert_eq!(m.take(b, 100), (5, true));
        assert_eq!(m.tokens(b), 0);
        assert!(!m.has_owner(b));
        // Taking from empty memory yields nothing.
        assert_eq!(m.take(b, 1), (0, false));
        m.put(b, 8, true);
        assert_eq!(m.tokens(b), 8);
        assert!(m.has_owner(b));
    }
}

//! The always-on simulation server.
//!
//! Binds a TCP port and serves the JSONL protocol in `SERVICE.md`:
//! multi-tenant experiment submission over the campaign job registry
//! (every paper artifact plus the synthetic `spin`/`hang` jobs), with
//! bounded admission queues, per-tenant quotas, typed load-shedding,
//! per-request deadlines and a graceful SIGTERM/ctrl-c drain.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!       [--max-inflight N] [--max-queued N] [--max-queued-bytes N]
//!       [--pipeline-limit N] [--idle-timeout-ms N] [--progress-ms N]
//!       [--deadline-ms N] [--drain-grace-ms N] [--cancel-grace-ms N]
//!       [--journal FILE] [--trace-dir DIR]
//!       [--state-dir DIR] [--no-recover] [--no-sync]
//!       [--max-frame-bytes N]
//! ```
//!
//! Connections are multiplexed on one reactor thread (`poll(2)` or
//! epoll; see `SERVICE.md` § Connection layer). `--pipeline-limit`
//! caps submits in flight per connection (excess sheds with the
//! retryable `pipeline_full` reason), `--idle-timeout-ms` reaps
//! connections with no traffic and no running work (0 disables), and
//! `--progress-ms` streams periodic `progress` frames for running
//! jobs (0 disables).
//!
//! `--state-dir DIR` makes the server crash-safe: accepted submits are
//! fsynced to `DIR/wal.jsonl` before they are acknowledged, the job
//! journal defaults to `DIR/journal.jsonl`, and on startup any job
//! that was accepted but not finished by a previous process is
//! re-enqueued (disable replay with `--no-recover`, trade durability
//! for speed with `--no-sync`). See `SERVICE.md` § Durability &
//! recovery.
//!
//! Prints one `listening on <addr>` line to stdout once ready (scripts
//! wait for it), then blocks until a drain completes and prints the
//! final counters. Exit code 0 after any clean drain, including one
//! with cancelled jobs — degraded shutdown is still orderly shutdown.

use std::io::Write as _;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use vsnoop::service::{serve, signal, ServiceConfig};
use vsnoop_bench::service_jobs::registry_factory;

struct Cli {
    addr: String,
    cfg: ServiceConfig,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        addr: "127.0.0.1:7878".to_string(),
        cfg: ServiceConfig::default(),
    };
    let mut state_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let parse_u64 = |flag: &str, v: String| -> Result<u64, String> {
            v.parse().map_err(|e| format!("{flag}: {e}"))
        };
        match arg.as_str() {
            "--addr" => cli.addr = value("--addr")?,
            "--workers" => {
                cli.cfg.workers = parse_u64("--workers", value("--workers")?)?.max(1) as usize;
            }
            "--queue-cap" => {
                cli.cfg.queue_cap = parse_u64("--queue-cap", value("--queue-cap")?)? as usize;
            }
            "--max-inflight" => {
                cli.cfg.quota.max_inflight =
                    parse_u64("--max-inflight", value("--max-inflight")?)?.max(1) as usize;
            }
            "--max-queued" => {
                cli.cfg.quota.max_queued =
                    parse_u64("--max-queued", value("--max-queued")?)? as usize;
            }
            "--max-queued-bytes" => {
                cli.cfg.quota.max_queued_bytes =
                    parse_u64("--max-queued-bytes", value("--max-queued-bytes")?)? as usize;
            }
            "--pipeline-limit" => {
                cli.cfg.pipeline_limit =
                    parse_u64("--pipeline-limit", value("--pipeline-limit")?)?.max(1) as usize;
            }
            "--idle-timeout-ms" => {
                cli.cfg.idle_timeout = Duration::from_millis(parse_u64(
                    "--idle-timeout-ms",
                    value("--idle-timeout-ms")?,
                )?);
            }
            "--progress-ms" => {
                cli.cfg.progress_interval =
                    Duration::from_millis(parse_u64("--progress-ms", value("--progress-ms")?)?);
            }
            "--deadline-ms" => {
                cli.cfg.default_deadline =
                    Duration::from_millis(parse_u64("--deadline-ms", value("--deadline-ms")?)?);
            }
            "--drain-grace-ms" => {
                cli.cfg.drain_grace = Duration::from_millis(parse_u64(
                    "--drain-grace-ms",
                    value("--drain-grace-ms")?,
                )?);
            }
            "--cancel-grace-ms" => {
                cli.cfg.cancel_grace = Duration::from_millis(parse_u64(
                    "--cancel-grace-ms",
                    value("--cancel-grace-ms")?,
                )?);
            }
            "--journal" => cli.cfg.journal_path = Some(PathBuf::from(value("--journal")?)),
            "--state-dir" => state_dir = Some(PathBuf::from(value("--state-dir")?)),
            "--no-recover" => cli.cfg.recover = false,
            "--no-sync" => cli.cfg.sync = false,
            "--max-frame-bytes" => {
                cli.cfg.max_frame_bytes =
                    parse_u64("--max-frame-bytes", value("--max-frame-bytes")?)?.max(256) as usize;
            }
            "--trace-dir" => {
                // Handled by init_obs(); consume the value here too.
                let _ = value("--trace-dir")?;
            }
            "--help" | "-h" => {
                return Err("usage: serve [--addr HOST:PORT] [--workers N] [--queue-cap N]\n\
                     \u{20}            [--max-inflight N] [--max-queued N] [--max-queued-bytes N]\n\
                     \u{20}            [--pipeline-limit N] [--idle-timeout-ms N] [--progress-ms N]\n\
                     \u{20}            [--deadline-ms N] [--drain-grace-ms N] [--cancel-grace-ms N]\n\
                     \u{20}            [--journal FILE] [--trace-dir DIR]\n\
                     \u{20}            [--state-dir DIR] [--no-recover] [--no-sync]\n\
                     \u{20}            [--max-frame-bytes N]"
                    .into());
            }
            other => return Err(format!("unknown argument: {other} (try --help)")),
        }
    }
    if let Some(dir) = state_dir {
        std::fs::create_dir_all(&dir).map_err(|e| format!("--state-dir {}: {e}", dir.display()))?;
        cli.cfg.wal_path = Some(dir.join("wal.jsonl"));
        if cli.cfg.journal_path.is_none() {
            cli.cfg.journal_path = Some(dir.join("journal.jsonl"));
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    vsnoop_bench::init_obs();
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let listener = match TcpListener::bind(&cli.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: bind {}: {e}", cli.addr);
            return ExitCode::from(2);
        }
    };
    signal::install();
    let server = match serve(listener, registry_factory(), cli.cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::from(2);
        }
    };
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    let report = server.wait();
    println!(
        "drained: done={} shed={} cancelled={} recovered={}",
        report.done, report.shed, report.cancelled, report.recovered
    );
    ExitCode::SUCCESS
}

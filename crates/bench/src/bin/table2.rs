//! Table II — simulated system configuration.

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::table2(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("table2: {e}");
            std::process::exit(1);
        }
    }
}

//! Warm-state reuse across experiment cells.
//!
//! Every paper artifact re-simulates the same machine from cold: warm
//! the caches for `warmup_rounds`, reset the counters, measure. The
//! warm-up depends only on the workload trace — PR 2's differential
//! oracle (`tests/differential_oracle.rs`) proves the warmed
//! *architectural* state is identical across filter policies on the
//! same access stream — so most cells of a sweep re-pay a warm-up that
//! an earlier cell already computed.
//!
//! This module eliminates that repetition with two process-wide caches:
//!
//! 1. **The warm pool** — warmed [`SimSnapshot`]s keyed by everything
//!    the warm-up actually depends on: application profile, machine
//!    configuration, seed, warm-up length, host activity, content
//!    sharing, the reference-engine toggle, and — only where the oracle
//!    does *not* prove policy-independence — the policy pair itself
//!    ([`WarmClass::PerPolicy`]). Cells in the policy-independent class
//!    warm **once** under the canonical broadcast pair and fork per
//!    policy/period.
//! 2. **The cell memo** — finished measurement results
//!    ([`CellResult`]: stats, traffic, removal log) keyed by the full
//!    cell parameters, so reports that re-run identical cells (Table IV
//!    vs Fig. 6, Fig. 7's counter cells vs Fig. 9, Table V vs Table VI
//!    vs Fig. 10's broadcast bars) simulate them once.
//!
//! Both caches serve *bit-identical* state — forked-vs-fresh identity
//! is pinned per policy by `tests/fork_identity.rs`, and campaign
//! stdout is pinned byte-for-byte by the report differential guard —
//! so reuse is purely a wall-clock optimization. [`set_warm_reuse`]
//! (or `VSNOOP_WARM_REUSE=0`) disables both caches, which is how the
//! `perf` binary's no-reuse control bin measures the speedup honestly.
//!
//! The pool holds full machine snapshots (megabytes each), so it is
//! bounded by an LRU cap (`VSNOOP_WARM_CAP`, default
//! [`DEFAULT_WARM_CAP`]); the memo holds only extracted counters and is
//! unbounded. Concurrent shards warming the same key block on a
//! per-key [`OnceLock`], so a warm-up is computed exactly once even
//! under [`crate::runner::scatter`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use sim_net::TrafficStats;
use workloads::{AppProfile, Workload, WorkloadConfig};

use crate::config::SystemConfig;
use crate::experiments::common::RunScale;
use crate::policy::{ContentPolicy, FilterPolicy};
use crate::simulator::{SimSnapshot, Simulator};
use crate::stats::{RemovalEvent, SimStats};

/// Default LRU capacity of the warm pool, in snapshots. Sized to keep
/// one phase of the campaign fully resident (ten simulation apps or
/// nine content apps, plus headroom) without letting full-scale
/// snapshots (several MB each) accumulate without bound.
pub const DEFAULT_WARM_CAP: usize = 16;

/// The canonical warm-up policies for the policy-independent class:
/// the TokenB baseline with broadcast content routing. Fixed — never
/// "whichever cell asked first" — so the cached state is independent
/// of shard scheduling order.
const CANONICAL: (FilterPolicy, ContentPolicy) =
    (FilterPolicy::TokenBroadcast, ContentPolicy::Broadcast);

/// Which warm-ups may share a snapshot.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum WarmClass {
    /// The oracle-backed policy-independent class: any non-RegionScout
    /// policy, provided content-shared pages are routed by broadcast
    /// (or do not exist). Warmed under [`CANONICAL`].
    Shared,
    /// Policies whose warm-up state is policy-specific: RegionScout
    /// (per-core region tables) and non-broadcast content routing
    /// (the relaxed clean-shared provider rule changes the warmed
    /// token states).
    PerPolicy {
        policy: FilterPolicy,
        content_policy: ContentPolicy,
    },
}

/// Everything a warm-up depends on.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct WarmKey {
    app: &'static str,
    /// `SystemConfig` carries `f64` latency parameters, so it cannot be
    /// `Eq`/`Hash` itself; its `Debug` form is canonical and total.
    cfg: String,
    seed: u64,
    warmup_rounds: u64,
    host_activity: bool,
    content_sharing: bool,
    class: WarmClass,
    /// The engine is chosen at construction from a process-global
    /// toggle; a fast-engine snapshot must never serve a
    /// reference-engine run (the differential guards flip this
    /// mid-process).
    reference_engine: bool,
}

/// One fully-specified experiment cell (warm-up + measurement).
#[derive(Clone, Debug)]
pub(crate) struct CellSpec {
    pub app: &'static AppProfile,
    pub policy: FilterPolicy,
    pub content_policy: ContentPolicy,
    pub content_sharing: bool,
    pub host_activity: bool,
    pub cfg: SystemConfig,
    pub scale: RunScale,
    /// `Some(period_ms)` runs the measurement with periodic cross-VM
    /// shuffles (the Figs. 7-9 migration model); `None` runs pinned.
    pub migration_period_ms: Option<f64>,
}

impl CellSpec {
    fn memo_key(&self) -> CellKey {
        CellKey {
            app: self.app.name,
            cfg: format!("{:?}", self.cfg),
            policy: self.policy,
            content_policy: self.content_policy,
            content_sharing: self.content_sharing,
            host_activity: self.host_activity,
            scale: (
                self.scale.warmup_rounds,
                self.scale.measure_rounds,
                self.scale.seed,
            ),
            migration_period_bits: self.migration_period_ms.map(f64::to_bits),
            reference_engine: crate::testing::reference_engine(),
        }
    }
}

/// Memo key: the full cell parameters ([`CellSpec`] with the `f64`
/// period and the non-`Eq` config made hashable).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CellKey {
    app: &'static str,
    cfg: String,
    policy: FilterPolicy,
    content_policy: ContentPolicy,
    content_sharing: bool,
    host_activity: bool,
    scale: (u64, u64, u64),
    migration_period_bits: Option<u64>,
    reference_engine: bool,
}

/// The measured outputs the report layer consumes from a finished cell.
#[derive(Clone, Debug)]
pub(crate) struct CellResult {
    pub stats: SimStats,
    pub traffic: TrafficStats,
    pub removal_log: Vec<RemovalEvent>,
}

impl CellResult {
    fn capture(sim: &Simulator) -> Self {
        CellResult {
            stats: sim.stats().clone(),
            traffic: *sim.traffic(),
            removal_log: sim.removal_log().to_vec(),
        }
    }
}

/// Reuse override: 0 = unset (environment decides), 1 = on, 2 = off.
static REUSE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Warm-pool effectiveness counters (process-wide, monotonic). A *hit*
/// is a [`warmed_pair`] call served from a pooled snapshot (including
/// threads that blocked while another warmer initialized the slot); a
/// *miss* is a call that had to compute the warm-up; an *eviction* is
/// an LRU drop under `VSNOOP_WARM_CAP`. The no-reuse path touches none
/// of them — it never consults the pool.
static WARM_HITS: AtomicU64 = AtomicU64::new(0);
static WARM_MISSES: AtomicU64 = AtomicU64::new(0);
static WARM_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Current warm-pool `(hits, misses, evictions)` counters. Surfaced in
/// telemetry heartbeats and epoch snapshots so `VSNOOP_WARM_CAP`
/// effectiveness is visible.
pub fn warm_counters() -> (u64, u64, u64) {
    (
        WARM_HITS.load(Ordering::Relaxed),
        WARM_MISSES.load(Ordering::Relaxed),
        WARM_EVICTIONS.load(Ordering::Relaxed),
    )
}

/// Zeroes the warm-pool counters (test hook).
#[doc(hidden)]
pub fn reset_warm_counters() {
    WARM_HITS.store(0, Ordering::Relaxed);
    WARM_MISSES.store(0, Ordering::Relaxed);
    WARM_EVICTIONS.store(0, Ordering::Relaxed);
    tenant_counters()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

/// Per-tenant `(hits, misses)` accounting for the shared cross-tenant
/// warm pool. Keyed by the thread's [`crate::obs::tenant_label`] —
/// installed by the service for each request and propagated to shard
/// workers by `scatter` — so every tenant can see how much of the
/// shared cache it is actually getting. A `BTreeMap` keeps the listing
/// order deterministic.
fn tenant_counters() -> &'static Mutex<std::collections::BTreeMap<String, (u64, u64)>> {
    static TENANTS: OnceLock<Mutex<std::collections::BTreeMap<String, (u64, u64)>>> =
        OnceLock::new();
    TENANTS.get_or_init(Mutex::default)
}

/// Records one warm-pool hit or miss against the current tenant, if
/// the thread carries a tenant label. CLI campaigns (no label) skip
/// the map entirely.
fn count_tenant(hit: bool) {
    let Some(tenant) = crate::obs::tenant_label() else {
        return;
    };
    let mut map = tenant_counters().lock().unwrap_or_else(|e| e.into_inner());
    let entry = map.entry(tenant).or_insert((0, 0));
    if hit {
        entry.0 += 1;
    } else {
        entry.1 += 1;
    }
}

/// Per-tenant warm-pool `(tenant, hits, misses)` counters, sorted by
/// tenant name. Empty unless requests ran with a tenant label (i.e.
/// through the service).
pub fn warm_tenant_counters() -> Vec<(String, u64, u64)> {
    tenant_counters()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(t, &(h, m))| (t.clone(), h, m))
        .collect()
}

/// Enables or disables warm-state reuse (pool *and* memo) process-wide.
/// Overrides `VSNOOP_WARM_REUSE`.
pub fn set_warm_reuse(on: bool) {
    REUSE_OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Whether warm-state reuse is active: [`set_warm_reuse`] if called,
/// else `VSNOOP_WARM_REUSE` (`0`/`false` disables), else on.
pub fn warm_reuse_enabled() -> bool {
    match REUSE_OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => !matches!(
            std::env::var("VSNOOP_WARM_REUSE").as_deref(),
            Ok("0") | Ok("false") | Ok("off")
        ),
    }
}

fn warm_cap() -> usize {
    crate::knob::env_positive_usize("VSNOOP_WARM_CAP").unwrap_or(DEFAULT_WARM_CAP)
}

/// Per-key slot: the `OnceLock` makes concurrent warmers of one key
/// block until the first finishes, instead of warming twice.
type WarmSlot = Arc<OnceLock<Arc<SimSnapshot>>>;
type MemoSlot = Arc<OnceLock<Arc<CellResult>>>;

#[derive(Default)]
struct WarmPool {
    slots: HashMap<WarmKey, WarmSlot>,
    /// LRU order, least-recent first.
    order: Vec<WarmKey>,
}

impl WarmPool {
    fn slot(&mut self, key: &WarmKey) -> WarmSlot {
        self.order.retain(|k| k != key);
        self.order.push(key.clone());
        let slot = self.slots.entry(key.clone()).or_default().clone();
        let cap = warm_cap();
        while self.order.len() > cap {
            let evicted = self.order.remove(0);
            self.slots.remove(&evicted);
            WARM_EVICTIONS.fetch_add(1, Ordering::Relaxed);
        }
        slot
    }
}

fn pool() -> &'static Mutex<WarmPool> {
    static POOL: OnceLock<Mutex<WarmPool>> = OnceLock::new();
    POOL.get_or_init(Mutex::default)
}

fn memo() -> &'static Mutex<HashMap<CellKey, MemoSlot>> {
    static MEMO: OnceLock<Mutex<HashMap<CellKey, MemoSlot>>> = OnceLock::new();
    MEMO.get_or_init(Mutex::default)
}

/// Drops every cached snapshot and memoized cell result. Used by the
/// `perf` harness between repetitions so each timed run pays the full
/// cost, and available to tests.
pub fn clear_warm_pool() {
    let mut p = pool().lock().expect("warm pool poisoned");
    p.slots.clear();
    p.order.clear();
    memo().lock().expect("cell memo poisoned").clear();
}

/// Number of snapshots currently pooled (test hook).
#[doc(hidden)]
pub fn warm_pool_len() -> usize {
    pool().lock().expect("warm pool poisoned").slots.len()
}

/// Builds a cold simulator + workload pair for the given cell
/// parameters under explicit policies.
fn build(
    app: &'static AppProfile,
    policy: FilterPolicy,
    content_policy: ContentPolicy,
    content_sharing: bool,
    host_activity: bool,
    cfg: SystemConfig,
    seed: u64,
) -> (Simulator, Workload) {
    let sim = Simulator::new(cfg, policy, content_policy);
    let wl = Workload::homogeneous(
        app,
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            seed,
            host_activity,
            content_sharing,
        },
    );
    (sim, wl)
}

/// Returns a *warmed* simulator + workload pair for the given cell
/// parameters: `warmup_rounds` already executed, measurement not yet
/// started (callers run `reset_measurement()` + the measured phase).
///
/// With reuse enabled the pair is forked from the pooled snapshot of
/// the cell's [`WarmClass`] — warming it on first use; with reuse
/// disabled (or a zero-round warm-up, where there is nothing to share)
/// it is warmed inline, which is the exact legacy serial path.
pub(crate) fn warmed_pair(
    app: &'static AppProfile,
    policy: FilterPolicy,
    content_policy: ContentPolicy,
    content_sharing: bool,
    host_activity: bool,
    cfg: SystemConfig,
    scale: RunScale,
) -> (Simulator, Workload) {
    if !warm_reuse_enabled() || scale.warmup_rounds == 0 {
        let (mut sim, mut wl) = build(
            app,
            policy,
            content_policy,
            content_sharing,
            host_activity,
            cfg,
            scale.seed,
        );
        sim.run(&mut wl, scale.warmup_rounds);
        return (sim, wl);
    }

    let region_scout = matches!(policy, FilterPolicy::RegionScout { .. });
    // The oracle-backed sharing condition: filtering alone never changes
    // the warmed architectural state, but RegionScout's per-core tables
    // and the clean-shared provider rule (active only when content pages
    // are routed away from broadcast) do.
    let shared = !region_scout && (!content_sharing || content_policy == ContentPolicy::Broadcast);
    let class = if shared {
        WarmClass::Shared
    } else {
        WarmClass::PerPolicy {
            policy,
            content_policy,
        }
    };
    let key = WarmKey {
        app: app.name,
        cfg: format!("{cfg:?}"),
        seed: scale.seed,
        warmup_rounds: scale.warmup_rounds,
        host_activity,
        content_sharing,
        class,
        reference_engine: crate::testing::reference_engine(),
    };

    let slot = pool().lock().expect("warm pool poisoned").slot(&key);
    let mut warmed_here = false;
    let snapshot = slot.get_or_init(|| {
        warmed_here = true;
        let (warm_policy, warm_content) = if shared {
            CANONICAL
        } else {
            (policy, content_policy)
        };
        let (mut sim, mut wl) = build(
            app,
            warm_policy,
            warm_content,
            content_sharing,
            host_activity,
            cfg,
            scale.seed,
        );
        sim.run(&mut wl, scale.warmup_rounds);
        Arc::new(sim.snapshot(&wl))
    });
    if warmed_here {
        WARM_MISSES.fetch_add(1, Ordering::Relaxed);
    } else {
        WARM_HITS.fetch_add(1, Ordering::Relaxed);
    }
    count_tenant(!warmed_here);

    if shared {
        snapshot
            .fork_with_policy(policy, content_policy)
            .expect("the shared warm class never retargets across RegionScout")
    } else {
        snapshot.fork()
    }
}

/// Executes `spec` end to end (or returns its memoized result): fork or
/// warm, reset, measure, extract. The memo is what lets two reports
/// built from identical cells simulate them once.
pub(crate) fn cell(spec: &CellSpec) -> Arc<CellResult> {
    if !warm_reuse_enabled() {
        return Arc::new(run_cell(spec));
    }
    let key = spec.memo_key();
    let slot = {
        let mut memo = memo().lock().expect("cell memo poisoned");
        memo.entry(key).or_default().clone()
    };
    slot.get_or_init(|| Arc::new(run_cell(spec))).clone()
}

fn run_cell(spec: &CellSpec) -> CellResult {
    let sim = match spec.migration_period_ms {
        None => crate::experiments::common::run_pinned(
            spec.app,
            spec.policy,
            spec.content_policy,
            spec.content_sharing,
            spec.host_activity,
            spec.cfg,
            spec.scale,
        ),
        Some(period_ms) => crate::experiments::migration::run_migrating(
            spec.app,
            spec.policy,
            period_ms,
            spec.cfg,
            spec.scale,
        ),
    };
    CellResult::capture(&sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::run_pinned;
    use workloads::profile;

    /// Serializes tests that flip the process-global reuse switch.
    static REUSE_LOCK: Mutex<()> = Mutex::new(());

    fn with_reuse<R>(on: bool, f: impl FnOnce() -> R) -> R {
        let _g = REUSE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = REUSE_OVERRIDE.load(Ordering::Relaxed);
        REUSE_OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
        struct Reset(usize);
        impl Drop for Reset {
            fn drop(&mut self) {
                REUSE_OVERRIDE.store(self.0, Ordering::Relaxed);
            }
        }
        let _r = Reset(before);
        f()
    }

    fn tiny() -> RunScale {
        RunScale {
            warmup_rounds: 400,
            measure_rounds: 300,
            seed: 0xFEED,
        }
    }

    #[test]
    fn reuse_matches_fresh_runs_bit_for_bit() {
        let cfg = SystemConfig::small_test();
        let app = profile("fft").unwrap();
        for policy in [
            FilterPolicy::TokenBroadcast,
            FilterPolicy::VsnoopBase,
            FilterPolicy::Counter,
        ] {
            let fresh = with_reuse(false, || {
                run_pinned(
                    app,
                    policy,
                    ContentPolicy::Broadcast,
                    false,
                    false,
                    cfg,
                    tiny(),
                )
            });
            let pooled = with_reuse(true, || {
                clear_warm_pool();
                run_pinned(
                    app,
                    policy,
                    ContentPolicy::Broadcast,
                    false,
                    false,
                    cfg,
                    tiny(),
                )
            });
            assert_eq!(fresh.stats(), pooled.stats(), "{policy}: stats diverged");
            assert_eq!(
                fresh.arch_state(),
                pooled.arch_state(),
                "{policy}: architectural state diverged"
            );
        }
    }

    #[test]
    fn policies_in_the_shared_class_share_one_snapshot() {
        let cfg = SystemConfig::small_test();
        let app = profile("lu").unwrap();
        with_reuse(true, || {
            clear_warm_pool();
            for policy in [
                FilterPolicy::TokenBroadcast,
                FilterPolicy::VsnoopBase,
                FilterPolicy::Counter,
                FilterPolicy::COUNTER_THRESHOLD_10,
            ] {
                let _ = run_pinned(
                    app,
                    policy,
                    ContentPolicy::Broadcast,
                    false,
                    false,
                    cfg,
                    tiny(),
                );
            }
            assert_eq!(warm_pool_len(), 1, "one warm-up must serve all four");
        });
    }

    #[test]
    fn region_scout_warms_its_own_snapshot() {
        let cfg = SystemConfig::small_test();
        let app = profile("lu").unwrap();
        with_reuse(true, || {
            clear_warm_pool();
            let _ = run_pinned(
                app,
                FilterPolicy::VsnoopBase,
                ContentPolicy::Broadcast,
                false,
                false,
                cfg,
                tiny(),
            );
            let _ = run_pinned(
                app,
                FilterPolicy::REGION_SCOUT_4K,
                ContentPolicy::Broadcast,
                false,
                false,
                cfg,
                tiny(),
            );
            assert_eq!(warm_pool_len(), 2, "RegionScout must not share");
        });
    }

    #[test]
    fn memoized_cells_return_identical_results() {
        let spec = CellSpec {
            app: profile("radix").unwrap(),
            policy: FilterPolicy::VsnoopBase,
            content_policy: ContentPolicy::Broadcast,
            content_sharing: false,
            host_activity: false,
            cfg: SystemConfig::small_test(),
            scale: tiny(),
            migration_period_ms: None,
        };
        with_reuse(true, || {
            clear_warm_pool();
            let a = cell(&spec);
            let b = cell(&spec);
            assert!(Arc::ptr_eq(&a, &b), "second lookup must be a memo hit");
        });
        let fresh = with_reuse(false, || run_cell(&spec));
        let memoized = with_reuse(true, || {
            clear_warm_pool();
            cell(&spec)
        });
        assert_eq!(fresh.stats, memoized.stats);
    }

    #[test]
    fn counters_track_pool_hits_and_misses() {
        let cfg = SystemConfig::small_test();
        let app = profile("fft").unwrap();
        with_reuse(true, || {
            clear_warm_pool();
            let (h0, m0, _) = warm_counters();
            let _ = run_pinned(
                app,
                FilterPolicy::TokenBroadcast,
                ContentPolicy::Broadcast,
                false,
                false,
                cfg,
                tiny(),
            );
            let (h1, m1, _) = warm_counters();
            assert_eq!(m1 - m0, 1, "cold pool: first warm-up is a miss");
            assert_eq!(h1 - h0, 0);
            let _ = run_pinned(
                app,
                FilterPolicy::VsnoopBase,
                ContentPolicy::Broadcast,
                false,
                false,
                cfg,
                tiny(),
            );
            let (h2, m2, _) = warm_counters();
            assert_eq!(m2 - m1, 0, "shared-class reuse must not re-warm");
            assert_eq!(h2 - h1, 1, "shared-class reuse is a hit");
        });
    }

    #[test]
    fn tenant_labels_attribute_hits_and_misses() {
        let cfg = SystemConfig::small_test();
        let app = profile("fft").unwrap();
        let scale = RunScale {
            warmup_rounds: 60,
            measure_rounds: 20,
            seed: 0xABCD,
        };
        let run = || {
            let _ = run_pinned(
                app,
                FilterPolicy::VsnoopBase,
                ContentPolicy::Broadcast,
                false,
                false,
                cfg,
                scale,
            );
        };
        with_reuse(true, || {
            clear_warm_pool();
            reset_warm_counters();
            // acme pays the warm-up; globex rides the shared pool.
            crate::obs::with_tenant("acme", run);
            crate::obs::with_tenant("globex", run);
            crate::obs::with_tenant("globex", run);
            run(); // unlabelled: no tenant accounting
            let tenants = warm_tenant_counters();
            assert_eq!(
                tenants,
                vec![("acme".into(), 0, 1), ("globex".into(), 2, 0)],
                "per-tenant (hits, misses), sorted by tenant"
            );
        });
    }

    #[test]
    fn lru_cap_bounds_the_pool() {
        let cfg = SystemConfig::small_test();
        with_reuse(true, || {
            clear_warm_pool();
            let (_, _, e0) = warm_counters();
            // Distinct seeds force distinct keys.
            for seed in 0..(DEFAULT_WARM_CAP as u64 + 5) {
                let scale = RunScale {
                    warmup_rounds: 50,
                    measure_rounds: 10,
                    seed,
                };
                let _ = run_pinned(
                    profile("fft").unwrap(),
                    FilterPolicy::VsnoopBase,
                    ContentPolicy::Broadcast,
                    false,
                    false,
                    cfg,
                    scale,
                );
            }
            assert!(
                warm_pool_len() <= DEFAULT_WARM_CAP,
                "pool exceeded its cap: {}",
                warm_pool_len()
            );
            let (_, _, e1) = warm_counters();
            assert_eq!(e1 - e0, 5, "overflow past the cap counts evictions");
        });
    }
}

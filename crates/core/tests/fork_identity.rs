//! Fork-vs-fresh bit-identity of the warm-state snapshot layer.
//!
//! The warm-pool optimization (`experiments::warm`) is only sound if a
//! simulator + workload pair forked from a [`vsnoop::SimSnapshot`]
//! continues *bit-identically* to one that simply kept running — for
//! every filter policy, including snapshots warmed under the canonical
//! broadcast pair and retargeted to a different policy before
//! measurement. These tests pin that contract directly at the API
//! level, without going through the pool: stats ([`SimStats`] is
//! `Eq`), network traffic, and the full architectural state dump must
//! all match.

use sim_net::TrafficStats;
use vsnoop::{ContentPolicy, FilterPolicy, SimStats, Simulator, SystemConfig};
use workloads::{profile, Workload, WorkloadConfig};

const WARMUP: u64 = 3_000;
const MEASURE: u64 = 2_000;
const SEED: u64 = 0x5EED;

/// Every filter policy the simulator supports.
fn all_policies() -> [FilterPolicy; 5] {
    [
        FilterPolicy::TokenBroadcast,
        FilterPolicy::VsnoopBase,
        FilterPolicy::Counter,
        FilterPolicy::COUNTER_THRESHOLD_10,
        FilterPolicy::REGION_SCOUT_4K,
    ]
}

fn cold_pair(
    policy: FilterPolicy,
    content_policy: ContentPolicy,
    content_sharing: bool,
    seed: u64,
) -> (Simulator, Workload) {
    let cfg = SystemConfig::small_test();
    let sim = Simulator::new(cfg, policy, content_policy);
    let wl = Workload::homogeneous(
        profile("fft").unwrap(),
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            seed,
            host_activity: false,
            content_sharing,
        },
    );
    (sim, wl)
}

/// Runs the measured phase and extracts everything identity is judged
/// on: the stats block, the traffic counters, and the architectural
/// state (caches + token ledger).
fn measure(mut sim: Simulator, mut wl: Workload) -> (SimStats, TrafficStats, String) {
    sim.reset_measurement();
    sim.run(&mut wl, MEASURE);
    (sim.stats().clone(), *sim.traffic(), sim.arch_state())
}

/// The reference: warm-up and measurement in one unbroken run.
fn fresh(
    policy: FilterPolicy,
    content_policy: ContentPolicy,
    content_sharing: bool,
    seed: u64,
    warmup: u64,
) -> (SimStats, TrafficStats, String) {
    let (mut sim, mut wl) = cold_pair(policy, content_policy, content_sharing, seed);
    sim.run(&mut wl, warmup);
    measure(sim, wl)
}

/// Warm natively under the target policy, snapshot, fork, measure.
fn forked_native(
    policy: FilterPolicy,
    content_policy: ContentPolicy,
    content_sharing: bool,
    seed: u64,
    warmup: u64,
) -> (SimStats, TrafficStats, String) {
    let (mut sim, mut wl) = cold_pair(policy, content_policy, content_sharing, seed);
    sim.run(&mut wl, warmup);
    let snap = sim.snapshot(&wl);
    drop((sim, wl));
    let (sim, wl) = snap.fork();
    measure(sim, wl)
}

/// Warm under the canonical broadcast pair, snapshot, retarget the fork
/// to the requested policy, measure. This is exactly what the warm
/// pool's shared class does.
fn forked_retargeted(
    policy: FilterPolicy,
    content_policy: ContentPolicy,
    seed: u64,
    warmup: u64,
) -> (SimStats, TrafficStats, String) {
    let (mut sim, mut wl) = cold_pair(
        FilterPolicy::TokenBroadcast,
        ContentPolicy::Broadcast,
        false,
        seed,
    );
    sim.run(&mut wl, warmup);
    let snap = sim.snapshot(&wl);
    let (sim, wl) = snap
        .fork_with_policy(policy, content_policy)
        .expect("retarget within the shared class must succeed");
    measure(sim, wl)
}

#[test]
fn native_fork_is_bit_identical_for_every_policy() {
    for policy in all_policies() {
        let a = fresh(policy, ContentPolicy::Broadcast, false, SEED, WARMUP);
        let b = forked_native(policy, ContentPolicy::Broadcast, false, SEED, WARMUP);
        assert_eq!(a.0, b.0, "{policy}: stats diverged");
        assert_eq!(a.1, b.1, "{policy}: traffic diverged");
        assert_eq!(a.2, b.2, "{policy}: architectural state diverged");
    }
}

#[test]
fn retargeted_fork_is_bit_identical_for_the_shared_class() {
    for policy in all_policies() {
        if matches!(policy, FilterPolicy::RegionScout { .. }) {
            continue; // rejected by design; see the retarget-rejection test
        }
        let a = fresh(policy, ContentPolicy::Broadcast, false, SEED, WARMUP);
        let b = forked_retargeted(policy, ContentPolicy::Broadcast, SEED, WARMUP);
        assert_eq!(a.0, b.0, "{policy}: stats diverged after retarget");
        assert_eq!(a.1, b.1, "{policy}: traffic diverged after retarget");
        assert_eq!(
            a.2, b.2,
            "{policy}: architectural state diverged after retarget"
        );
    }
}

#[test]
fn content_policy_forks_are_bit_identical() {
    // Non-broadcast content routing is in the per-policy warm class:
    // it forks natively. Broadcast routing retargets from canonical.
    for content_policy in ContentPolicy::ALL {
        let a = fresh(FilterPolicy::VsnoopBase, content_policy, true, SEED, WARMUP);
        let b = forked_native(FilterPolicy::VsnoopBase, content_policy, true, SEED, WARMUP);
        assert_eq!(a.0, b.0, "{content_policy:?}: stats diverged");
        assert_eq!(a.1, b.1, "{content_policy:?}: traffic diverged");
        assert_eq!(a.2, b.2, "{content_policy:?}: architectural state diverged");
    }
}

#[test]
fn region_scout_retarget_is_rejected_both_ways() {
    let (mut sim, mut wl) = cold_pair(
        FilterPolicy::TokenBroadcast,
        ContentPolicy::Broadcast,
        false,
        SEED,
    );
    sim.run(&mut wl, 100);
    let snap = sim.snapshot(&wl);
    assert!(
        snap.fork_with_policy(FilterPolicy::REGION_SCOUT_4K, ContentPolicy::Broadcast)
            .is_err(),
        "forking a broadcast-warmed snapshot into RegionScout must fail"
    );

    let (mut sim, mut wl) = cold_pair(
        FilterPolicy::REGION_SCOUT_4K,
        ContentPolicy::Broadcast,
        false,
        SEED,
    );
    sim.run(&mut wl, 100);
    let snap = sim.snapshot(&wl);
    assert!(
        snap.fork_with_policy(FilterPolicy::VsnoopBase, ContentPolicy::Broadcast)
            .is_err(),
        "forking a RegionScout-warmed snapshot into another policy must fail"
    );
    assert_eq!(snap.warmed_policy(), FilterPolicy::REGION_SCOUT_4K);
    // The same-policy fork of a RegionScout snapshot stays allowed.
    assert!(snap
        .fork_with_policy(FilterPolicy::REGION_SCOUT_4K, ContentPolicy::Broadcast)
        .is_ok());
}

#[test]
fn snapshot_consumes_no_workload_rng() {
    // Two identical pairs; one takes a snapshot mid-flight. If
    // `snapshot` consumed (or perturbed) any workload RNG state, the
    // subsequent access streams — and therefore the stats and the
    // architectural state — would diverge.
    let (mut sim_a, mut wl_a) = cold_pair(
        FilterPolicy::VsnoopBase,
        ContentPolicy::Broadcast,
        false,
        SEED,
    );
    let (mut sim_b, mut wl_b) = cold_pair(
        FilterPolicy::VsnoopBase,
        ContentPolicy::Broadcast,
        false,
        SEED,
    );
    sim_a.run(&mut wl_a, WARMUP);
    sim_b.run(&mut wl_b, WARMUP);
    let snap = sim_a.snapshot(&wl_a);
    let a = measure(sim_a, wl_a);
    let b = measure(sim_b, wl_b);
    assert_eq!(a.0, b.0, "snapshot() perturbed the measured stats");
    assert_eq!(a.2, b.2, "snapshot() perturbed the architectural state");
    // And the snapshot itself forks into the same continuation.
    let (forked_sim, forked_wl) = snap.fork();
    let c = measure(forked_sim, forked_wl);
    assert_eq!(a.0, c.0, "fork diverged from the uninterrupted run");
    assert_eq!(a.2, c.2, "fork diverged from the uninterrupted run");
}

#[test]
fn forks_are_repeatable() {
    let (mut sim, mut wl) = cold_pair(FilterPolicy::Counter, ContentPolicy::Broadcast, false, SEED);
    sim.run(&mut wl, WARMUP);
    let snap = sim.snapshot(&wl);
    let first = {
        let (s, w) = snap.fork();
        measure(s, w)
    };
    let second = {
        let (s, w) = snap.fork();
        measure(s, w)
    };
    assert_eq!(first.0, second.0, "two forks of one snapshot diverged");
    assert_eq!(first.1, second.1);
    assert_eq!(first.2, second.2);
}

#[cfg(feature = "proptest")]
mod randomized {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Fork identity holds at arbitrary seeds and snapshot points,
        /// for a policy drawn from the full set.
        #[test]
        fn fork_identity_over_seeds_and_warmups(
            seed in any::<u64>(),
            warmup in 200u64..2_000,
            which in 0usize..5,
        ) {
            let policy = all_policies()[which];
            let a = fresh(policy, ContentPolicy::Broadcast, false, seed, warmup);
            let b = forked_native(policy, ContentPolicy::Broadcast, false, seed, warmup);
            prop_assert_eq!(a.0, b.0, "{}: stats diverged", policy);
            prop_assert_eq!(a.1, b.1, "{}: traffic diverged", policy);
            prop_assert_eq!(a.2, b.2, "{}: architectural state diverged", policy);
        }

        /// Retargeting from the canonical warm snapshot is identical to
        /// a fresh native run for the shared class, at any seed.
        #[test]
        fn retarget_identity_over_seeds(
            seed in any::<u64>(),
            which in 0usize..4, // the first four policies: RegionScout is excluded by design
        ) {
            let policy = all_policies()[which];
            let a = fresh(policy, ContentPolicy::Broadcast, false, seed, 800);
            let b = forked_retargeted(policy, ContentPolicy::Broadcast, seed, 800);
            prop_assert_eq!(a.0, b.0, "{}: stats diverged", policy);
            prop_assert_eq!(a.2, b.2, "{}: architectural state diverged", policy);
        }
    }
}
